//===- CoarsePipeline.cpp - Coarse-grained T/C/U pipelining (§III-D2) ---------//
//
// Implements Algorithm 1: loops whose body decomposes into a Tensor Core
// stage T (first dot), a CUDA Core transform C (softmax-style math on T's
// output), and a downstream Tensor Core stage U (second dot) are rotated so
// that iteration j overlaps T_j (tensor cores) with C_{j-1} (CUDA cores):
//
//   prologue:   issue T_0; wait; consumed(K_0)
//   steady j:   issue T_j
//               wait {pendings=1}            // U_{j-2} retired
//               consumed(V_{j-2})            // predicated j >= 2
//               compute C_{j-1}              // overlaps T_j
//               get V_{j-1}; issue U_{j-1}
//               wait {pendings=1}            // T_j retired
//               consumed(K_j)
//   epilogue:   wait; consumed(V_{N-2}); C_{N-1}; issue U_{N-1};
//               wait; consumed(V_{N-1})
//
// Stage identification uses dialect/type cues exactly as §III-D2 describes:
// tensor-core ops and their glue form T (and U when a second tensor-core
// phase exists); float math reading T's output forms C. Aref-use inspection
// decides which stages perform gets/consumed (the MAYBEAREF_* wrappers: a
// stage with no cross-WG reads simply has no get to emit).
//
// Precondition: the loop runs at least one iteration (true for every
// attention launch: there is always at least one KV tile).
//
//===----------------------------------------------------------------------===//

#include "ir/Builder.h"
#include "ir/Ir.h"
#include "passes/Passes.h"
#include "passes/Utils.h"
#include "support/Support.h"

#include <algorithm>

using namespace tawa;

namespace {

struct StageInfo {
  std::vector<Operation *> TOps;    ///< In body program order.
  std::vector<Operation *> COps;    ///< In body program order.
  std::vector<Operation *> UOps;    ///< In body program order.
  std::vector<Operation *> PostOps; ///< Iteration updates, program order.
  Operation *Dot1 = nullptr;
  Operation *Dot2 = nullptr;
  Value *ArefK = nullptr; ///< Channel acquired by T.
  Value *ArefV = nullptr; ///< Channel acquired by U.
  std::vector<unsigned> StateArgs; ///< Iter args updated by C/U.
  std::vector<unsigned> IterArgs;  ///< Iter args updated by POST.
  std::vector<Value *> CrossVals;  ///< Prev-iteration values C/U read.
};

class CoarsePipeliner {
public:
  CoarsePipeliner(IrContext &Ctx) : Ctx(Ctx) {}

  std::string runOnLoop(WarpGroupOp *WG, ForOp *Loop);

private:
  bool classify(ForOp *Loop, StageInfo &Info);
  /// Clones \p Ops in order with \p Map, converting dots to async issues.
  /// Returns the mapped value of the last dot's result if any.
  void cloneSection(const std::vector<Operation *> &Ops, ValueMap &Map,
                    OpBuilder &B);

  IrContext &Ctx;
};

} // namespace

/// Splits the loop body into T/C/U/POST stages. Returns false when the body
/// does not have the two-dot structure (then the fine-grained pass applies
/// instead).
bool CoarsePipeliner::classify(ForOp *Loop, StageInfo &Info) {
  Block &Body = Loop->getBody();
  std::vector<Operation *> Dots;
  for (Operation &Op : Body)
    if (Op.getKind() == OpKind::Dot)
      Dots.push_back(&Op);
  if (Dots.size() != 2)
    return false;
  Info.Dot1 = Dots[0];
  Info.Dot2 = Dots[1];

  // U = Dot2 plus any get feeding only Dot2.
  std::set<Operation *> USet = {Info.Dot2};
  for (Operation &Op : Body) {
    if (Op.getKind() != OpKind::ArefGet)
      continue;
    bool OnlyDot2 = true;
    for (unsigned I = 0, E = Op.getNumResults(); I != E && OnlyDot2; ++I)
      for (const Use &U : Op.getResult(I)->getUses())
        if (U.Owner != Info.Dot2)
          OnlyDot2 = false;
    if (OnlyDot2) {
      USet.insert(&Op);
      Info.ArefV = Op.getOperand(0);
    }
  }

  // T = backward slice of Dot1 (its operands) plus Dot1, minus U.
  std::set<Operation *> TSet = computeBackwardSlice(
      {Info.Dot1->getOperand(0), Info.Dot1->getOperand(1),
       Info.Dot1->getOperand(2)},
      &Body);
  TSet.insert(Info.Dot1);
  for (Operation *Op : USet)
    TSet.erase(Op);
  for (Operation *Op : TSet)
    if (Op->getKind() == OpKind::ArefGet)
      Info.ArefK = Op->getOperand(0);

  // Classify iter args by their update slice: an arg is an iteration arg
  // when its yield slice avoids T/U and produces no float tensors.
  Operation *Yield = Loop->getYield();
  std::set<Operation *> PostSet;
  for (unsigned I = 0, E = Yield->getNumOperands(); I != E; ++I) {
    std::set<Operation *> Slice =
        computeBackwardSlice({Yield->getOperand(I)}, &Body);
    bool Iteration = true;
    for (Operation *Op : Slice) {
      if (TSet.count(Op) || USet.count(Op)) {
        Iteration = false;
        break;
      }
      for (unsigned R = 0, RE = Op->getNumResults(); R != RE; ++R) {
        auto *TT = dyn_cast<TensorType>(Op->getResult(R)->getType());
        if (TT && TT->getElementType()->isFloat()) {
          Iteration = false;
          break;
        }
      }
      if (!Iteration)
        break;
    }
    if (Iteration) {
      Info.IterArgs.push_back(I);
      PostSet.insert(Slice.begin(), Slice.end());
    } else {
      Info.StateArgs.push_back(I);
    }
  }

  // Partition the body in program order.
  for (Operation &Op : Body) {
    if (&Op == Yield || Op.getKind() == OpKind::ArefConsumed)
      continue;
    if (TSet.count(&Op))
      Info.TOps.push_back(&Op);
    else if (USet.count(&Op))
      Info.UOps.push_back(&Op);
    else if (PostSet.count(&Op))
      Info.PostOps.push_back(&Op);
    else
      Info.COps.push_back(&Op);
  }

  // Cross-iteration values: anything C/U reads that T/POST or the block
  // arguments produce must be carried one iteration (state args excepted —
  // they already lag naturally).
  std::set<unsigned> StateSet(Info.StateArgs.begin(), Info.StateArgs.end());
  std::set<Value *> Cross;
  auto Consider = [&](Value *V) {
    if (auto *Arg = dyn_cast<BlockArgument>(V)) {
      if (Arg->getOwner() != &Body)
        return; // Defined outside the loop: shared.
      if (Arg->getArgIndex() > 0 && StateSet.count(Arg->getArgIndex() - 1))
        return; // State args lag naturally.
      Cross.insert(V);
      return;
    }
    Operation *Def = cast<OpResult>(V)->getOwner();
    if (Def->getParentBlock() != &Body)
      return;
    if (TSet.count(Def) || PostSet.count(Def))
      Cross.insert(V);
  };
  for (Operation *Op : Info.COps)
    for (Value *V : Op->getOperands())
      Consider(V);
  for (Operation *Op : Info.UOps)
    for (Value *V : Op->getOperands())
      Consider(V);
  Info.CrossVals.assign(Cross.begin(), Cross.end());
  return true;
}

void CoarsePipeliner::cloneSection(const std::vector<Operation *> &Ops,
                                   ValueMap &Map, OpBuilder &B) {
  for (Operation *Op : Ops) {
    if (Op->getKind() == OpKind::Dot) {
      Value *Issue = B.createWgmmaIssue(
          mapValue(Map, Op->getOperand(0)), mapValue(Map, Op->getOperand(1)),
          mapValue(Map, Op->getOperand(2)),
          Op->getIntAttrOr("transB", 0) != 0);
      Map[Op->getResult(0)] = Issue;
      continue;
    }
    cloneOp(Op, Map, B);
  }
}

std::string CoarsePipeliner::runOnLoop(WarpGroupOp *WG, ForOp *Loop) {
  StageInfo Info;
  if (!classify(Loop, Info))
    return ""; // Not a T/C/U loop; leave for the fine-grained pass.
  (void)WG;

  Operation *Yield = Loop->getYield();
  int64_t CounterIdx = Loop->getIntAttr("tawa.counter_arg");
  Value *CounterInit = Loop->getInitArg(CounterIdx);

  OpBuilder B(Ctx);

  //===--- Prologue: T_0, wait, consumed(K_0) -----------------------------===//
  B.setInsertionPoint(Loop);
  ValueMap Map0;
  Map0[Loop->getInductionVar()] = Loop->getLowerBound();
  for (unsigned I = 0, E = Loop->getNumIterArgs(); I != E; ++I)
    Map0[Loop->getIterArg(I)] = Loop->getInitArg(I);
  cloneSection(Info.TOps, Map0, B);
  B.createWgmmaWait(0);
  if (Info.ArefK)
    B.createArefConsumed(Info.ArefK, CounterInit);
  cloneSection(Info.PostOps, Map0, B);

  //===--- Rotated steady-state loop (j = 1 .. N-1) -----------------------===//
  // Iter args: originals (state args seeded with the *original* inits, since
  // C/U have not run yet; iteration args seeded with POST_0's results) plus
  // one "prev" arg per cross value plus a two-deep counter history for the
  // lagged V release.
  std::vector<Value *> Inits;
  std::set<unsigned> IterSet(Info.IterArgs.begin(), Info.IterArgs.end());
  for (unsigned I = 0, E = Loop->getNumIterArgs(); I != E; ++I) {
    if (IterSet.count(I))
      Inits.push_back(mapValue(Map0, Yield->getOperand(I)));
    else
      Inits.push_back(Loop->getInitArg(I));
  }
  unsigned NumOrigArgs = Loop->getNumIterArgs();
  for (Value *V : Info.CrossVals)
    Inits.push_back(mapValue(Map0, V));
  Value *MinusOne = B.createConstantInt(-1);
  Inits.push_back(MinusOne); // prev2 counter sentinel.

  Value *LbPlusStep = B.createAdd(Loop->getLowerBound(), Loop->getStep());
  ForOp *Rot = B.createFor(LbPlusStep, Loop->getUpperBound(), Loop->getStep(),
                           Inits);
  Rot->setAttr("tawa.counter_arg", CounterIdx);
  Rot->setAttr("tawa.main_loop", static_cast<int64_t>(1));
  Rot->setAttr("tawa.coarse_pipelined", static_cast<int64_t>(1));

  {
    OpBuilder RB(Ctx);
    RB.setInsertionPointToEnd(&Rot->getBody());

    // MapT: current-iteration view. MapC: lagged view for C/U.
    ValueMap MapT;
    MapT[Loop->getInductionVar()] = Rot->getInductionVar();
    for (unsigned I = 0; I != NumOrigArgs; ++I)
      MapT[Loop->getIterArg(I)] = Rot->getIterArg(I);
    ValueMap MapC = MapT;
    for (unsigned I = 0, E = Info.CrossVals.size(); I != E; ++I)
      MapC[Info.CrossVals[I]] = Rot->getIterArg(NumOrigArgs + I);
    Value *Prev2Counter = Rot->getIterArg(NumOrigArgs + Info.CrossVals.size());
    Value *CounterArg = Rot->getIterArg(CounterIdx);
    Value *PrevCounter = mapValue(MapC, Loop->getIterArg(CounterIdx));

    // T_j (async issue).
    cloneSection(Info.TOps, MapT, RB);
    // U_{j-2} retired; release V_{j-2}.
    RB.createWgmmaWait(1);
    if (Info.ArefV) {
      Value *Pred = RB.createCmpSlt(RB.createConstantInt(-1), Prev2Counter);
      Operation *Rel = RB.createArefConsumed(Info.ArefV, Prev2Counter);
      Rel->addOperand(Pred);
    }
    // C_{j-1} on CUDA cores, overlapping T_j.
    cloneSection(Info.COps, MapC, RB);
    // U_{j-1} (get V_{j-1} happens inside the section via MapC's counter).
    cloneSection(Info.UOps, MapC, RB);
    // T_j retired; release K_j.
    RB.createWgmmaWait(1);
    if (Info.ArefK)
      RB.createArefConsumed(Info.ArefK, CounterArg);
    // POST_j.
    cloneSection(Info.PostOps, MapT, RB);

    std::vector<Value *> Yields;
    for (unsigned I = 0; I != NumOrigArgs; ++I) {
      ValueMap &Src = IterSet.count(I) ? MapT : MapC;
      Yields.push_back(mapValue(Src, Yield->getOperand(I)));
    }
    for (Value *V : Info.CrossVals)
      Yields.push_back(mapValue(MapT, V));
    Yields.push_back(PrevCounter);
    RB.createYield(Yields);
  }

  //===--- Epilogue: drain C_{N-1}, U_{N-1} -------------------------------===//
  B.setInsertionPointAfter(Rot);
  ValueMap MapE;
  for (unsigned I = 0; I != NumOrigArgs; ++I)
    MapE[Loop->getIterArg(I)] = Rot->getResult(I);
  for (unsigned I = 0, E = Info.CrossVals.size(); I != E; ++I)
    MapE[Info.CrossVals[I]] = Rot->getResult(NumOrigArgs + I);
  Value *Prev2Out = Rot->getResult(NumOrigArgs + Info.CrossVals.size());
  Value *PrevCounterOut = mapValue(MapE, Loop->getIterArg(CounterIdx));
  // The epilogue re-runs C/U for the last iteration; the induction variable
  // value it would observe is ub - step, but no C/U op reads the iv in our
  // kernels — guard by mapping it to the carried value if it was crossed.
  MapE[Loop->getInductionVar()] = Loop->getUpperBound();

  B.createWgmmaWait(0);
  if (Info.ArefV) {
    Value *Pred = B.createCmpSlt(B.createConstantInt(-1), Prev2Out);
    Operation *Rel = B.createArefConsumed(Info.ArefV, Prev2Out);
    Rel->addOperand(Pred);
  }
  cloneSection(Info.COps, MapE, B);
  cloneSection(Info.UOps, MapE, B);
  B.createWgmmaWait(0);
  if (Info.ArefV)
    B.createArefConsumed(Info.ArefV, PrevCounterOut);

  // Rewire the original loop's results: state results come from the drained
  // C/U; iteration results match the rotated loop's own results.
  for (unsigned I = 0; I != NumOrigArgs; ++I) {
    Value *Repl = IterSet.count(I) ? Rot->getResult(I)
                                   : mapValue(MapE, Yield->getOperand(I));
    Loop->getResult(I)->replaceAllUsesWith(Repl);
  }
  Loop->erase();
  return "";
}

std::string tawa::runCoarseGrainedPipeline(Module &M) {
  CoarsePipeliner Pipeliner(M.getContext());
  for (Operation &FuncOpRef : M.getBody()) {
    auto *F = dyn_cast<FuncOp>(&FuncOpRef);
    if (!F)
      continue;
    for (Operation &Op : F->getBody()) {
      auto *WG = dyn_cast<WarpGroupOp>(&Op);
      if (!WG || WG->getRole() != "consumer")
        continue;
      // Find the main loop of this warp group.
      ForOp *Main = nullptr;
      WG->walk([&](Operation *Inner) {
        if (Inner->getKind() == OpKind::For &&
            Inner->getIntAttrOr("tawa.main_loop", 0))
          Main = static_cast<ForOp *>(Inner);
      });
      if (!Main)
        continue;
      if (std::string Err = Pipeliner.runOnLoop(WG, Main); !Err.empty())
        return Err;
    }
  }
  return "";
}
