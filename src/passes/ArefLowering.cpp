//===- ArefLowering.cpp - Lowering arefs to TMA + mbarriers (§III-E) ----------//
//
// Rewrites the abstract aref operations into the concrete instructions the
// GPU executes:
//
//   create_aref  ->  one shared-memory ring (D slots) + two mbarrier arrays
//                    (full[D], empty[D]);
//   put(a, k)    ->  wait(empty[k%D], parity=(k/D+1)%2);
//                    expect_tx(full[k%D], totalBytes);
//                    async TMA copies into the slot that arrive on full;
//   get(a, k)    ->  wait(full[k%D], parity=(k/D)%2); reads from the slot;
//   consumed(a,k)->  arrive(empty[k%D]).
//
// The two-phase parity scheme is exactly the deadlock-avoidance mechanism of
// §III-E: producers initially sail through the empty waits (parity 1 against
// a fresh barrier), and from the second wrap onward each side waits for the
// other's previous-generation signal, enabling multi-buffering without
// circular waits.
//
// Remaining synchronous dots in consumer warp groups become issue + wait(0)
// pairs so the simulator sees only asynchronous tensor-core work.
//
//===----------------------------------------------------------------------===//

#include "ir/Builder.h"
#include "ir/Ir.h"
#include "passes/Passes.h"
#include "passes/Utils.h"
#include "support/Support.h"

using namespace tawa;

namespace {

struct LoweredChannel {
  Value *Smem = nullptr;
  Value *FullBar = nullptr;
  Value *EmptyBar = nullptr;
  int64_t Depth = 1;
  std::vector<TensorType *> PayloadTypes;
  std::vector<int64_t> PayloadOffsets; ///< Byte offset within one slot.
  int64_t SlotBytes = 0;
};

class ArefLoweringPass {
public:
  explicit ArefLoweringPass(Module &M) : M(M), Ctx(M.getContext()) {}
  std::string run();

private:
  std::string lowerFunc(FuncOp *F);
  void emitSlotParity(OpBuilder &B, Value *Index, int64_t Depth, Value *&Slot,
                      Value *&Wrap);
  std::string lowerPut(Operation *Put, LoweredChannel &Chan);
  void lowerGet(Operation *Get, LoweredChannel &Chan);
  void lowerConsumed(Operation *Consumed, LoweredChannel &Chan);

  Module &M;
  IrContext &Ctx;
  int ChannelCounter = 0;
};

} // namespace

/// Computes slot = index % D and wrap = index / D as IR.
void ArefLoweringPass::emitSlotParity(OpBuilder &B, Value *Index,
                                      int64_t Depth, Value *&Slot,
                                      Value *&Wrap) {
  Value *D = B.createConstantInt(Depth);
  Slot = B.createRem(Index, D);
  Wrap = B.createDiv(Index, D);
}

std::string ArefLoweringPass::lowerPut(Operation *Put, LoweredChannel &Chan) {
  OpBuilder B(Ctx);
  B.setInsertionPoint(Put);
  Value *Index = Put->getOperand(1);
  Value *Slot, *Wrap;
  emitSlotParity(B, Index, Chan.Depth, Slot, Wrap);
  Value *Two = B.createConstantInt(2);
  Value *One = B.createConstantInt(1);
  // Producer parity: (wrap + 1) % 2 — passes immediately on the first wrap.
  Value *Parity = B.createRem(B.createAdd(Wrap, One), Two);
  B.createMBarrierWait(Chan.EmptyBar, Slot, Parity);
  B.createMBarrierExpectTx(Chan.FullBar, Slot, Chan.SlotBytes);

  // Each payload element must be produced by a TMA load; the load becomes an
  // async copy into the ring slot arriving on the full barrier.
  for (unsigned I = 2, E = Put->getNumOperands(); I != E; ++I) {
    auto *Res = dyn_cast<OpResult>(Put->getOperand(I));
    if (!Res || Res->getOwner()->getKind() != OpKind::TmaLoad)
      return "aref-lowering: put payload is not a TMA load result: " +
             Put->getOneLineSummary();
    Operation *Load = Res->getOwner();
    Value *Desc = Load->getOperand(0);
    std::vector<Value *> Offsets;
    for (unsigned O = 1, OE = Load->getNumOperands(); O != OE; ++O)
      Offsets.push_back(Load->getOperand(O));
    auto *Ty = cast<TensorType>(Load->getResult(0)->getType());
    Operation *Copy =
        B.createTmaLoadAsync(Desc, Offsets, Chan.Smem, Chan.FullBar, Slot,
                             Ty->getNumBytes(), Chan.PayloadOffsets[I - 2]);
    Copy->setAttr("shape", Ty->getShape());
  }

  // Erase the put, then any loads that only fed it.
  std::vector<Operation *> Loads;
  for (unsigned I = 2, E = Put->getNumOperands(); I != E; ++I)
    Loads.push_back(cast<OpResult>(Put->getOperand(I))->getOwner());
  Put->erase();
  for (Operation *Load : Loads)
    if (!Load->hasResultUses())
      Load->erase();
  return "";
}

void ArefLoweringPass::lowerGet(Operation *Get, LoweredChannel &Chan) {
  OpBuilder B(Ctx);
  B.setInsertionPoint(Get);
  Value *Index = Get->getOperand(1);
  Value *Slot, *Wrap;
  emitSlotParity(B, Index, Chan.Depth, Slot, Wrap);
  // Consumer parity: wrap % 2 — blocks until the producer publishes.
  Value *Parity = B.createRem(Wrap, B.createConstantInt(2));
  B.createMBarrierWait(Chan.FullBar, Slot, Parity);
  for (unsigned I = 0, E = Get->getNumResults(); I != E; ++I) {
    Value *Staged = B.createSmemRead(Chan.Smem, Slot, Chan.PayloadTypes[I],
                                     Chan.PayloadOffsets[I]);
    Get->getResult(I)->replaceAllUsesWith(Staged);
  }
  Get->erase();
}

void ArefLoweringPass::lowerConsumed(Operation *Consumed,
                                     LoweredChannel &Chan) {
  OpBuilder B(Ctx);
  B.setInsertionPoint(Consumed);
  Value *Index = Consumed->getOperand(1);
  Value *Slot, *Wrap;
  emitSlotParity(B, Index, Chan.Depth, Slot, Wrap);
  (void)Wrap;
  Operation *Arrive = B.createMBarrierArrive(Chan.EmptyBar, Slot);
  if (Consumed->getNumOperands() > 2)
    Arrive->addOperand(Consumed->getOperand(2)); // Predicate.
  Consumed->erase();
}

std::string ArefLoweringPass::lowerFunc(FuncOp *F) {
  // Collect channels.
  std::vector<Operation *> CreateOps;
  F->walk([&](Operation *Op) {
    if (Op->getKind() == OpKind::CreateAref)
      CreateOps.push_back(Op);
  });

  for (Operation *Create : CreateOps) {
    auto *AT = cast<ArefType>(Create->getResult(0)->getType());
    LoweredChannel Chan;
    Chan.Depth = AT->getDepth();
    Chan.SlotBytes = AT->getSlotBytes();
    int64_t Offset = 0;
    auto AddPayload = [&](Type *T) {
      auto *TT = cast<TensorType>(T);
      Chan.PayloadTypes.push_back(TT);
      Chan.PayloadOffsets.push_back(Offset);
      Offset += TT->getNumBytes();
    };
    if (auto *Tup = dyn_cast<TupleType>(AT->getPayloadType()))
      for (Type *T : Tup->getElementTypes())
        AddPayload(T);
    else
      AddPayload(AT->getPayloadType());

    // Count consumer warp groups releasing this channel: the empty barrier
    // needs that many arrivals per phase (cooperative groups each arrive).
    std::set<Operation *> ConsumerWGs;
    std::vector<Operation *> Puts, Gets, Consumeds;
    F->walk([&](Operation *Op) {
      if (Op->getNumOperands() == 0 ||
          Op->getOperand(0) != Create->getResult(0))
        return;
      switch (Op->getKind()) {
      case OpKind::ArefPut:
        Puts.push_back(Op);
        break;
      case OpKind::ArefGet:
        Gets.push_back(Op);
        break;
      case OpKind::ArefConsumed: {
        Consumeds.push_back(Op);
        for (Operation *P = Op->getParentOp(); P; P = P->getParentOp())
          if (isa<WarpGroupOp>(P)) {
            ConsumerWGs.insert(P);
            break;
          }
        break;
      }
      default:
        break;
      }
    });
    int64_t NumConsumers =
        std::max<int64_t>(1, static_cast<int64_t>(ConsumerWGs.size()));

    OpBuilder B(Ctx);
    B.setInsertionPoint(Create);
    int64_t ChannelId = ChannelCounter++;
    std::string Name = formatString("aref%lld",
                                    static_cast<long long>(ChannelId));
    Chan.Smem = B.createSmemAlloc(Chan.Depth * Chan.SlotBytes, Name);
    Operation *SmemOp = cast<OpResult>(Chan.Smem)->getOwner();
    SmemOp->setAttr("slot_bytes", Chan.SlotBytes);
    SmemOp->setAttr("channel", ChannelId);
    SmemOp->setAttr("num_slots", Chan.Depth);
    SmemOp->setAttr("writers_per_slot",
                    static_cast<int64_t>(Chan.PayloadTypes.size()));
    SmemOp->setAttr("readers_per_slot", NumConsumers);
    Chan.FullBar = B.createMBarrierAlloc(Chan.Depth, Name + ".full");
    Operation *FullOp = cast<OpResult>(Chan.FullBar)->getOwner();
    FullOp->setAttr("expected_arrivals",
                    static_cast<int64_t>(Chan.PayloadTypes.size()));
    FullOp->setAttr("channel", ChannelId);
    FullOp->setAttr("kind", std::string("full"));
    Chan.EmptyBar = B.createMBarrierAlloc(Chan.Depth, Name + ".empty");
    Operation *EmptyOp = cast<OpResult>(Chan.EmptyBar)->getOwner();
    EmptyOp->setAttr("expected_arrivals", NumConsumers);
    EmptyOp->setAttr("channel", ChannelId);
    EmptyOp->setAttr("kind", std::string("empty"));

    for (Operation *Put : Puts)
      if (std::string Err = lowerPut(Put, Chan); !Err.empty())
        return Err;
    for (Operation *Get : Gets)
      lowerGet(Get, Chan);
    for (Operation *Consumed : Consumeds)
      lowerConsumed(Consumed, Chan);

    assert(!Create->hasResultUses() && "aref uses survived lowering");
    Create->erase();
  }

  // Convert any remaining synchronous dots (consumers that were not
  // pipelined) into issue + wait(0).
  std::vector<Operation *> Dots;
  F->walk([&](Operation *Op) {
    if (Op->getKind() == OpKind::Dot && Op->getParentFuncOp() &&
        Op->getParentOp() && !isa<FuncOp>(Op->getParentOp()))
      Dots.push_back(Op);
  });
  for (Operation *Dot : Dots) {
    // Only dots inside warp groups are lowered (plain tile-dialect kernels
    // never reach this pass).
    bool InWG = false;
    for (Operation *P = Dot->getParentOp(); P; P = P->getParentOp())
      if (isa<WarpGroupOp>(P))
        InWG = true;
    if (!InWG)
      continue;
    OpBuilder B(Ctx);
    B.setInsertionPoint(Dot);
    Value *Issue = B.createWgmmaIssue(Dot->getOperand(0), Dot->getOperand(1),
                                      Dot->getOperand(2),
                                      Dot->getIntAttrOr("transB", 0) != 0);
    B.createWgmmaWait(0);
    Dot->getResult(0)->replaceAllUsesWith(Issue);
    Dot->erase();
  }
  return "";
}

std::string ArefLoweringPass::run() {
  for (Operation &Op : M.getBody())
    if (auto *F = dyn_cast<FuncOp>(&Op))
      if (std::string Err = lowerFunc(static_cast<FuncOp *>(F));
          !Err.empty())
        return Err;
  return "";
}

std::string tawa::runArefLowering(Module &M) {
  return ArefLoweringPass(M).run();
}

std::string tawa::runSoftwarePipeline(Module &M, int64_t Depth) {
  // The Ampere-style cp.async baseline keeps the tile-dialect structure; the
  // lookahead and its costs (CUDA-core issue slots, lower copy efficiency,
  // per-iteration barrier) are realized by the execution model, which reads
  // this attribute. See models/Frameworks.cpp for the cost treatment.
  if (Depth < 1)
    return "software pipeline depth must be >= 1";
  M.setAttr("sw_pipeline_depth", Depth);
  return "";
}
