//===- Utils.cpp - Shared pass utilities --------------------------------------//

#include "passes/Utils.h"

using namespace tawa;

Operation *tawa::cloneOp(Operation *Op, ValueMap &Map, OpBuilder &B) {
  std::vector<Type *> ResultTypes;
  for (unsigned I = 0, E = Op->getNumResults(); I != E; ++I)
    ResultTypes.push_back(Op->getResult(I)->getType());
  std::vector<Value *> Operands;
  for (unsigned I = 0, E = Op->getNumOperands(); I != E; ++I)
    Operands.push_back(mapValue(Map, Op->getOperand(I)));

  Operation *Clone = B.create(Op->getKind(), std::move(ResultTypes),
                              std::move(Operands), Op->getNumRegions());
  for (const auto &[Name, Attr] : Op->getAttrs())
    Clone->setAttr(Name, Attr);
  for (unsigned I = 0, E = Op->getNumResults(); I != E; ++I)
    Map[Op->getResult(I)] = Clone->getResult(I);

  // Clone regions recursively.
  for (unsigned R = 0, RE = Op->getNumRegions(); R != RE; ++R) {
    Region &OldRegion = Op->getRegion(R);
    if (OldRegion.empty())
      continue;
    Block &OldBlock = OldRegion.getBlock();
    Block &NewBlock = Clone->getRegion(R).emplaceBlock();
    for (unsigned A = 0, AE = OldBlock.getNumArguments(); A != AE; ++A) {
      BlockArgument *NewArg =
          NewBlock.addArgument(OldBlock.getArgument(A)->getType());
      Map[OldBlock.getArgument(A)] = NewArg;
    }
    OpBuilder Inner(B.getContext());
    Inner.setInsertionPointToEnd(&NewBlock);
    for (Operation &Nested : OldBlock)
      cloneOp(&Nested, Map, Inner);
  }
  return Clone;
}

std::set<Operation *>
tawa::computeBackwardSlice(const std::vector<Value *> &Roots, Block *Scope) {
  std::set<Operation *> Slice;
  std::vector<Value *> Worklist = Roots;
  while (!Worklist.empty()) {
    Value *V = Worklist.back();
    Worklist.pop_back();
    auto *Res = dyn_cast<OpResult>(V);
    if (!Res)
      continue; // Block arguments terminate the walk.
    Operation *Def = Res->getOwner();
    if (Def->getParentBlock() != Scope)
      continue; // Defined outside the scope: stays shared.
    if (!Slice.insert(Def).second)
      continue;
    for (Value *Operand : Def->getOperands())
      Worklist.push_back(Operand);
  }
  return Slice;
}

static bool eraseDeadOps(Block &B) {
  bool Changed = false;
  // Walk in reverse so users die before defs within one sweep.
  std::vector<Operation *> Ops = B.getOps();
  for (auto It = Ops.rbegin(), E = Ops.rend(); It != E; ++It) {
    Operation *Op = *It;
    for (unsigned R = 0, RE = Op->getNumRegions(); R != RE; ++R)
      if (!Op->getRegion(R).empty())
        Changed |= eraseDeadOps(Op->getRegion(R).getBlock());
    if (hasSideEffects(Op->getKind()) || Op->getNumRegions() > 0)
      continue;
    if (Op->hasResultUses())
      continue;
    Op->erase();
    Changed = true;
  }
  return Changed;
}

void tawa::runDce(Block &FuncBody) {
  while (eraseDeadOps(FuncBody)) {
  }
}
