//===- SemanticTagging.cpp - Partition annotation (§III-C1) -------------------//
//
// Backward traversal along use-def chains from the kernel's side-effecting
// sinks, attaching a semantic tag to every node:
//
//   "tile"  — transforms or consumes a tile for actual computation (dots,
//             float-tensor elementwise math, reductions, stores of tiles);
//   "iter"  — contributes to address/index computation (pointer arithmetic,
//             induction updates, grid decomposition);
//   "load"  — the TMA loads themselves, the producer/consumer cut points.
//
// The tags make the high-level intent of each region explicit so that the
// partitioner can recover producer-related operations even when iteration
// statements are scattered through the IR (e.g. the o_k update of Fig. 2b
// L20, far from the tma_load at L16).
//
//===----------------------------------------------------------------------===//

#include "ir/Ir.h"
#include "passes/Passes.h"
#include "passes/Utils.h"

using namespace tawa;

/// True for values that carry tile data (float tensors).
static bool isTileValue(Value *V) {
  auto *TT = dyn_cast<TensorType>(V->getType());
  return TT && TT->getElementType()->isFloat();
}

static const char *classify(Operation *Op) {
  switch (Op->getKind()) {
  case OpKind::TmaLoad:
  case OpKind::Load:
    return "load";
  case OpKind::Dot:
  case OpKind::Reduce:
  case OpKind::Exp2F:
  case OpKind::Cast:
    return "tile";
  case OpKind::Store:
  case OpKind::TmaStore:
  case OpKind::AtomicAdd:
    return "tile"; // Output writes belong to the consumer epilogue.
  default:
    break;
  }
  // Elementwise/select/constant ops: tile iff they produce tile data.
  for (unsigned I = 0, E = Op->getNumResults(); I != E; ++I)
    if (isTileValue(Op->getResult(I)))
      return "tile";
  // Integer/pointer arithmetic, program ids, ranges, comparisons feeding
  // masks: iteration statements.
  return "iter";
}

std::string tawa::runSemanticTagging(Module &M) {
  for (Operation &Func : M.getBody()) {
    Func.walk([](Operation *Op) {
      if (isa<FuncOp>(Op) || Op->getKind() == OpKind::For ||
          Op->getKind() == OpKind::Yield || Op->getKind() == OpKind::Return ||
          Op->getKind() == OpKind::WarpGroup)
        return; // Structural ops carry no role.
      Op->setAttr("tawa.tag", std::string(classify(Op)));
    });
  }
  return "";
}

std::string tawa::runCanonicalize(Module &M) {
  for (Operation &Func : M.getBody())
    if (auto *F = dyn_cast<FuncOp>(&Func))
      runDce(F->getBody());
  return "";
}
