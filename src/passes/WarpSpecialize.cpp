//===- WarpSpecialize.cpp - Task-aware partitioning (§III-C) ------------------//
//
// Partitions a tagged tile-dialect kernel into producer/consumer warp groups
// and performs loop distribution:
//
//   * every TMA load feeding the compute partition becomes a cross-partition
//     edge realized as an aref ring (tensors consumed by the same dot share
//     one tuple-payload aref, §III-C2);
//   * the producer warp group receives the iteration statements (backward
//     slice of the load addresses and loop controls) plus the loads and the
//     aref puts;
//   * the consumer warp group receives everything else — tile statements,
//     duplicated iteration statements it needs (e.g. causal-mask indices),
//     aref gets/consumed, and the epilogue;
//   * an explicit iteration counter is threaded through the (possibly
//     persistent, i.e. nested) loop chain on both sides so slot indices and
//     barrier phases stay globally monotonic.
//
//===----------------------------------------------------------------------===//

#include "ir/Builder.h"
#include "ir/Ir.h"
#include "passes/Passes.h"
#include "passes/Utils.h"
#include "support/Support.h"

#include <algorithm>

using namespace tawa;

namespace {

/// One aref channel: a set of loads published together.
struct ArefGroup {
  std::vector<Operation *> Loads; ///< In payload order.
  bool InMainLoop = false;        ///< False for preamble (loop-invariant).
  Value *Aref = nullptr;          ///< The created tawa.create_aref result.
};

struct Partitioner {
  Module &M;
  int64_t Depth;
  FuncOp *Func = nullptr;
  std::vector<ForOp *> Chain; ///< Outermost chain loop ... main loop.
  ForOp *MainLoop = nullptr;
  std::vector<ArefGroup> Groups;
  std::set<Operation *> ProducerKeep;
  std::map<ForOp *, std::vector<unsigned>> ProducerArgs; ///< Kept arg idxs.

  Partitioner(Module &M, int64_t Depth) : M(M), Depth(Depth) {}

  std::string run();
  std::string runOnFunc(FuncOp *F);
  bool findLoopChain();
  void groupLoads();
  std::string computeProducerSlice();
  void buildProducer(OpBuilder &B);
  Value *cloneProducerChain(size_t Level, ValueMap &Map, OpBuilder &B,
                            Value *CounterIn);
  void buildConsumer(OpBuilder &B);
  Value *cloneConsumerChain(size_t Level, ValueMap &Map, OpBuilder &B,
                            Value *CounterIn);
};

} // namespace

/// Finds the innermost loop that directly contains TMA loads, and the chain
/// of loops from the function body down to it.
bool Partitioner::findLoopChain() {
  // Collect loops whose body directly holds a TmaLoad.
  std::vector<ForOp *> Candidates;
  Func->walk([&](Operation *Op) {
    if (Op->getKind() != OpKind::TmaLoad)
      return;
    if (auto *Loop = dyn_cast_if_present<ForOp>(Op->getParentOp()))
      if (std::find(Candidates.begin(), Candidates.end(), Loop) ==
          Candidates.end())
        Candidates.push_back(static_cast<ForOp *>(Loop));
  });
  if (Candidates.empty())
    return false;
  // The main loop is the most deeply nested candidate.
  MainLoop = Candidates.front();
  for (ForOp *C : Candidates)
    if (MainLoop->isAncestorOf(C))
      MainLoop = C;
  // Build the ancestor chain (func body -> main loop).
  for (Operation *Op = MainLoop; Op; Op = Op->getParentOp()) {
    if (auto *Loop = dyn_cast<ForOp>(Op))
      Chain.insert(Chain.begin(), static_cast<ForOp *>(Loop));
    if (isa<FuncOp>(Op))
      break;
  }
  return true;
}

/// Groups the TMA loads into aref channels (§III-C2): loads that feed the
/// two multiplicand operands of the same dot share one tuple aref.
void Partitioner::groupLoads() {
  std::set<Operation *> Grouped;
  // Pass 1: pairs feeding one dot.
  MainLoop->walk([&](Operation *Op) {
    if (Op->getKind() != OpKind::Dot)
      return;
    auto *A = dyn_cast<OpResult>(Op->getOperand(0));
    auto *B = dyn_cast<OpResult>(Op->getOperand(1));
    if (!A || !B)
      return;
    Operation *DefA = A->getOwner(), *DefB = B->getOwner();
    if (DefA->getKind() != OpKind::TmaLoad ||
        DefB->getKind() != OpKind::TmaLoad)
      return;
    if (DefA->getParentBlock() != &MainLoop->getBody() ||
        DefB->getParentBlock() != &MainLoop->getBody())
      return;
    if (Grouped.count(DefA) || Grouped.count(DefB))
      return;
    Groups.push_back({{DefA, DefB}, /*InMainLoop=*/true, nullptr});
    Grouped.insert(DefA);
    Grouped.insert(DefB);
  });
  // Pass 2: remaining loads become singleton channels.
  Func->walk([&](Operation *Op) {
    if (Op->getKind() != OpKind::TmaLoad || Grouped.count(Op))
      return;
    bool InMain = Op->getParentBlock() == &MainLoop->getBody();
    Groups.push_back({{Op}, InMain, nullptr});
    Grouped.insert(Op);
  });
}

/// Fixpoint backward slice over the loop chain identifying the producer
/// partition: loads, their address computations, loop controls, and the
/// loop-carried iteration state feeding them.
std::string Partitioner::computeProducerSlice() {
  std::set<Block *> ChainBodies;
  for (ForOp *Loop : Chain)
    ChainBodies.insert(&Loop->getBody());

  std::vector<Value *> Worklist;
  std::set<BlockArgument *> KeptArgs;

  auto pushOperands = [&](Operation *Op) {
    for (Value *V : Op->getOperands())
      Worklist.push_back(V);
  };

  // Seeds: the loads themselves and every chain loop's bounds.
  for (ArefGroup &G : Groups)
    for (Operation *Load : G.Loads) {
      ProducerKeep.insert(Load);
      pushOperands(Load);
    }
  for (ForOp *Loop : Chain) {
    Worklist.push_back(Loop->getLowerBound());
    Worklist.push_back(Loop->getUpperBound());
    Worklist.push_back(Loop->getStep());
  }

  while (!Worklist.empty()) {
    Value *V = Worklist.back();
    Worklist.pop_back();
    if (auto *Arg = dyn_cast<BlockArgument>(V)) {
      Block *Owner = Arg->getOwner();
      if (!ChainBodies.count(Owner))
        continue; // Function argument: shared.
      if (Arg->getArgIndex() == 0)
        continue; // Induction variable: always available.
      if (!KeptArgs.insert(Arg).second)
        continue;
      // Keeping an iter arg requires its init and its yield update.
      auto *Loop = static_cast<ForOp *>(Owner->getParentOp());
      unsigned IterIdx = Arg->getArgIndex() - 1;
      Worklist.push_back(Loop->getInitArg(IterIdx));
      Worklist.push_back(Loop->getYield()->getOperand(IterIdx));
      continue;
    }
    auto *Res = cast<OpResult>(V);
    Operation *Def = Res->getOwner();
    if (!ChainBodies.count(Def->getParentBlock()))
      continue; // Defined outside the chain: shared preamble.
    if (isa<ForOp>(Def))
      return "unsupported: a TMA address depends on a nested loop result";
    if (Def->hasAttr("tawa.tag") &&
        Def->getStringAttr("tawa.tag") == "tile")
      return "cannot partition: a TMA address depends on a tile statement (" +
             Def->getOneLineSummary() + ")";
    if (!ProducerKeep.insert(Def).second)
      continue;
    pushOperands(Def);
  }

  // Record kept iter-arg indices per loop, in ascending order.
  for (ForOp *Loop : Chain) {
    std::vector<unsigned> Idxs;
    for (unsigned I = 0, E = Loop->getNumIterArgs(); I != E; ++I)
      if (KeptArgs.count(Loop->getIterArg(I)))
        Idxs.push_back(I);
    ProducerArgs[Loop] = Idxs;
  }
  return "";
}

/// Recursively rebuilds the loop chain for the producer warp group, keeping
/// only the iteration slice, emitting puts in the main loop, and threading
/// the global iteration counter. Returns the counter after the loop.
Value *Partitioner::cloneProducerChain(size_t Level, ValueMap &Map,
                                       OpBuilder &B, Value *CounterIn) {
  ForOp *Orig = Chain[Level];
  std::vector<Value *> Inits;
  for (unsigned Idx : ProducerArgs[Orig])
    Inits.push_back(mapValue(Map, Orig->getInitArg(Idx)));
  Inits.push_back(CounterIn);

  ForOp *NewLoop = B.createFor(mapValue(Map, Orig->getLowerBound()),
                               mapValue(Map, Orig->getUpperBound()),
                               mapValue(Map, Orig->getStep()), Inits);
  const std::vector<unsigned> &Kept = ProducerArgs[Orig];
  NewLoop->setAttr("tawa.counter_arg", static_cast<int64_t>(Kept.size()));
  if (Orig == MainLoop)
    NewLoop->setAttr("tawa.main_loop", static_cast<int64_t>(1));
  Map[Orig->getInductionVar()] = NewLoop->getInductionVar();
  for (unsigned I = 0, E = Kept.size(); I != E; ++I)
    Map[Orig->getIterArg(Kept[I])] = NewLoop->getIterArg(I);
  Value *CounterArg = NewLoop->getIterArg(Kept.size());

  OpBuilder Inner(B.getContext());
  Inner.setInsertionPointToEnd(&NewLoop->getBody());

  Value *CounterNext = nullptr;
  bool IsMain = Orig == MainLoop;
  for (Operation *Op : Orig->getBody().getOps()) {
    if (Level + 1 < Chain.size() && Op == Chain[Level + 1]) {
      CounterNext = cloneProducerChain(Level + 1, Map, Inner, CounterArg);
      continue;
    }
    if (Op->getKind() == OpKind::Yield)
      continue;
    if (ProducerKeep.count(Op))
      cloneOp(Op, Map, Inner);
  }

  if (IsMain) {
    // Publish each channel's freshly loaded tensors at index = counter.
    for (ArefGroup &G : Groups) {
      if (!G.InMainLoop)
        continue;
      std::vector<Value *> Payload;
      for (Operation *Load : G.Loads)
        Payload.push_back(mapValue(Map, Load->getResult(0)));
      Inner.createArefPut(G.Aref, CounterArg, Payload);
    }
    CounterNext = Inner.createAdd(CounterArg, Inner.createConstantInt(1));
  }
  assert(CounterNext && "chain level did not produce a counter");

  std::vector<Value *> YieldVals;
  for (unsigned Idx : ProducerArgs[Orig])
    YieldVals.push_back(mapValue(Map, Orig->getYield()->getOperand(Idx)));
  YieldVals.push_back(CounterNext);
  Inner.createYield(YieldVals);

  return NewLoop->getResult(Kept.size());
}

void Partitioner::buildProducer(OpBuilder &B) {
  ValueMap Map;
  Value *Counter = B.createConstantInt(0);
  // Preamble (loop-invariant) loads: publish once at index 0.
  for (ArefGroup &G : Groups) {
    if (G.InMainLoop)
      continue;
    std::vector<Value *> Payload;
    for (Operation *Load : G.Loads)
      Payload.push_back(cloneOp(Load, Map, B)->getResult(0));
    B.createArefPut(G.Aref, B.createConstantInt(0), Payload);
  }
  cloneProducerChain(0, Map, B, Counter);
}

/// Recursively rebuilds the loop chain for the consumer warp group: a full
/// clone (tile statements plus duplicated iteration statements) with loads
/// replaced by aref gets and consumed ops inserted before the yield.
Value *Partitioner::cloneConsumerChain(size_t Level, ValueMap &Map,
                                       OpBuilder &B, Value *CounterIn) {
  ForOp *Orig = Chain[Level];
  std::vector<Value *> Inits;
  for (unsigned I = 0, E = Orig->getNumIterArgs(); I != E; ++I)
    Inits.push_back(mapValue(Map, Orig->getInitArg(I)));
  Inits.push_back(CounterIn);

  ForOp *NewLoop = B.createFor(mapValue(Map, Orig->getLowerBound()),
                               mapValue(Map, Orig->getUpperBound()),
                               mapValue(Map, Orig->getStep()), Inits);
  NewLoop->setAttr("tawa.counter_arg",
                   static_cast<int64_t>(Orig->getNumIterArgs()));
  if (Orig == MainLoop)
    NewLoop->setAttr("tawa.main_loop", static_cast<int64_t>(1));
  Map[Orig->getInductionVar()] = NewLoop->getInductionVar();
  for (unsigned I = 0, E = Orig->getNumIterArgs(); I != E; ++I)
    Map[Orig->getIterArg(I)] = NewLoop->getIterArg(I);
  Value *CounterArg = NewLoop->getIterArg(Orig->getNumIterArgs());

  OpBuilder Inner(B.getContext());
  Inner.setInsertionPointToEnd(&NewLoop->getBody());

  // Which channel does each load belong to (main-loop channels only)?
  std::map<Operation *, ArefGroup *> LoadChannel;
  for (ArefGroup &G : Groups)
    if (G.InMainLoop)
      for (Operation *Load : G.Loads)
        LoadChannel[Load] = &G;
  std::set<ArefGroup *> Acquired;

  Value *CounterNext = nullptr;
  bool IsMain = Orig == MainLoop;
  for (Operation *Op : Orig->getBody().getOps()) {
    if (Level + 1 < Chain.size() && Op == Chain[Level + 1]) {
      CounterNext = cloneConsumerChain(Level + 1, Map, Inner, CounterArg);
      continue;
    }
    if (Op->getKind() == OpKind::Yield)
      continue;
    auto ChanIt = LoadChannel.find(Op);
    if (ChanIt != LoadChannel.end()) {
      // Replace the group's loads by one get at the first load's position.
      ArefGroup *G = ChanIt->second;
      if (Acquired.insert(G).second) {
        Operation *Get = Inner.createArefGet(G->Aref, CounterArg);
        for (unsigned I = 0, E = G->Loads.size(); I != E; ++I)
          Map[G->Loads[I]->getResult(0)] = Get->getResult(I);
      }
      continue;
    }
    cloneOp(Op, Map, Inner);
  }

  if (IsMain) {
    for (ArefGroup &G : Groups)
      if (G.InMainLoop)
        Inner.createArefConsumed(G.Aref, CounterArg);
    CounterNext = Inner.createAdd(CounterArg, Inner.createConstantInt(1));
  }
  assert(CounterNext && "chain level did not produce a counter");

  std::vector<Value *> YieldVals;
  for (unsigned I = 0, E = Orig->getNumIterArgs(); I != E; ++I)
    YieldVals.push_back(mapValue(Map, Orig->getYield()->getOperand(I)));
  YieldVals.push_back(CounterNext);
  Inner.createYield(YieldVals);

  // Make the original loop's results resolve to the new loop's results so
  // the cloned epilogue can use them.
  for (unsigned I = 0, E = Orig->getNumResults(); I != E; ++I)
    Map[Orig->getResult(I)] = NewLoop->getResult(I);
  return NewLoop->getResult(Orig->getNumIterArgs());
}

void Partitioner::buildConsumer(OpBuilder &B) {
  ValueMap Map;
  // Acquire loop-invariant channels (e.g. the attention Q tile) up front.
  for (ArefGroup &G : Groups) {
    if (G.InMainLoop)
      continue;
    Operation *Get = B.createArefGet(G.Aref, B.createConstantInt(0));
    for (unsigned I = 0, E = G.Loads.size(); I != E; ++I)
      Map[G.Loads[I]->getResult(0)] = Get->getResult(I);
  }

  Value *Counter = B.createConstantInt(0);
  cloneConsumerChain(0, Map, B, Counter);

  // Epilogue: clone the function-level ops after the outer loop (the output
  // writes of Fig. 5b attach to WG1 so they occur exactly once).
  ForOp *Outer = Chain.front();
  for (Operation *Op = Outer->getNextNode(); Op; Op = Op->getNextNode()) {
    if (Op->getKind() == OpKind::Return || Op->getKind() == OpKind::WarpGroup)
      continue;
    cloneOp(Op, Map, B);
  }

  // Release loop-invariant channels.
  for (ArefGroup &G : Groups)
    if (!G.InMainLoop)
      B.createArefConsumed(G.Aref, B.createConstantInt(0));
}

std::string Partitioner::runOnFunc(FuncOp *F) {
  Func = F;
  Chain.clear();
  Groups.clear();
  ProducerKeep.clear();
  ProducerArgs.clear();

  if (!findLoopChain())
    return ""; // Nothing to specialize (no TMA loads in loops).
  groupLoads();
  if (std::string Err = computeProducerSlice(); !Err.empty())
    return Err;

  IrContext &Ctx = M.getContext();
  OpBuilder B(Ctx);

  // Create the aref channels right before the outer loop.
  ForOp *Outer = Chain.front();
  B.setInsertionPoint(Outer);
  for (ArefGroup &G : Groups) {
    std::vector<Type *> PayloadTypes;
    for (Operation *Load : G.Loads)
      PayloadTypes.push_back(Load->getResult(0)->getType());
    Type *Payload = PayloadTypes.size() == 1
                        ? PayloadTypes.front()
                        : static_cast<Type *>(Ctx.getTupleType(PayloadTypes));
    int64_t GroupDepth = G.InMainLoop ? Depth : 1;
    G.Aref = B.createAref(Payload, GroupDepth);
  }

  // Producer warp group (WG0), then consumer warp group (WG1).
  WarpGroupOp *WG0 = B.createWarpGroup(0, "producer");
  {
    OpBuilder PB(Ctx);
    PB.setInsertionPointToEnd(&WG0->getBody());
    buildProducer(PB);
  }
  WarpGroupOp *WG1 = B.createWarpGroup(1, "consumer");
  {
    OpBuilder CB(Ctx);
    CB.setInsertionPointToEnd(&WG1->getBody());
    buildConsumer(CB);
  }

  // Erase the original epilogue (everything between the outer loop and the
  // return), the outer loop, and the preamble loads.
  std::vector<Operation *> ToErase;
  for (Operation *Op = Outer->getNextNode(); Op; Op = Op->getNextNode())
    if (Op->getKind() != OpKind::Return)
      ToErase.push_back(Op);
  for (auto It = ToErase.rbegin(), E = ToErase.rend(); It != E; ++It)
    (*It)->erase();
  Outer->erase();
  for (ArefGroup &G : Groups)
    for (Operation *Load : G.Loads)
      if (!G.InMainLoop)
        Load->erase();

  // Dead preamble computations feeding only the erased loop are cleaned by
  // the canonicalizer later; shared ones remain for both warp groups.
  return "";
}

std::string Partitioner::run() {
  for (Operation &Op : M.getBody())
    if (auto *F = dyn_cast<FuncOp>(&Op))
      if (std::string Err = runOnFunc(static_cast<FuncOp *>(F)); !Err.empty())
        return Err;
  return "";
}

std::string tawa::runWarpSpecialize(Module &M, int64_t ArefDepth) {
  return Partitioner(M, ArefDepth).run();
}
