//===- Passes.h - The Tawa compilation pipeline -----------------*- C++ -*-===//
//
// Entry points for every transformation of §III-§IV plus the Triton-style
// software-pipelining baseline, and a small PassManager that verifies the
// module between passes.
//
//===----------------------------------------------------------------------===//

#ifndef TAWA_PASSES_PASSES_H
#define TAWA_PASSES_PASSES_H

#include <functional>
#include <string>
#include <vector>

namespace tawa {

class Module;

/// Compile-time knobs of the Tawa flow (§V-A: "the size of the aref and the
/// depth of the MMA pipeline are selected manually").
struct TawaOptions {
  /// Master switch — the `enable_warp_specialization=True` of §III-A.
  bool EnableWarpSpecialization = true;
  /// Aref ring depth D (Fig. 11 rows).
  int64_t ArefDepth = 2;
  /// Fine-grained MMA pipeline depth P (Fig. 11 columns); 0 disables the
  /// fine-grained pass (synchronous dots).
  int64_t MmaPipelineDepth = 1;
  /// Number of cooperative consumer warp groups (§IV-A); 1 = plain WS.
  int64_t NumConsumerGroups = 1;
  /// Persistent-kernel transformation (§IV-B).
  bool Persistent = false;
  /// Coarse-grained T/C/U pipelining (§III-D2); applies to kernels with the
  /// two-dot structure (attention).
  bool CoarsePipeline = false;

  /// Returns a diagnostic for infeasible combinations (the empty cells of
  /// Fig. 11: P > D would require more borrowed slots than the ring holds),
  /// or "" when feasible.
  std::string validate() const;
};

//===----------------------------------------------------------------------===//
// Individual passes. Each returns "" on success or a diagnostic.
//===----------------------------------------------------------------------===//

/// §III-C1: tags every op `tawa.tag = "iter" | "tile" | "load"` by walking
/// backward from side-effecting sinks.
std::string runSemanticTagging(Module &M);

/// §IV-B: converts the grid-parallel kernel into a persistent kernel whose
/// resident CTAs loop over a tile work queue. Must run before partitioning.
std::string runPersistentKernel(Module &M);

/// §III-C2: partitions the tagged program into producer/consumer warp
/// groups, creates arefs (ring depth \p ArefDepth) per cross-partition edge
/// (grouping tensors that feed the same dot into tuple payloads), duplicates
/// shared iteration statements, and distributes loops.
std::string runWarpSpecialize(Module &M, int64_t ArefDepth);

/// §IV-A: clones the consumer warp group into \p NumGroups cooperative
/// replicas sharing each tile.
std::string runCooperativeWarpGroups(Module &M, int64_t NumGroups);

/// §III-D1: bounded MMA pipeline of depth \p P inside consumer warp groups:
/// dots become async issues, waits keep at most P in flight, and consumed
/// ops lag by P iterations (with a drain epilogue).
std::string runFineGrainedPipeline(Module &M, int64_t P);

/// §III-D2 (Algorithm 1): rotates T -> C -> U loops so the CUDA-core stage
/// C_{j-1} overlaps the tensor-core stage T_j.
std::string runCoarseGrainedPipeline(Module &M);

/// §III-E: lowers create_aref/put/get/consumed to shared-memory buffers,
/// transaction mbarriers with the two-phase parity scheme, and async TMA
/// copies; converts remaining synchronous dots to issue+wait(0) pairs.
std::string runArefLowering(Module &M);

/// Baseline: Ampere-style `cp.async` software pipelining inside a single
/// warp role (what Triton emits without warp specialization, §II-B).
std::string runSoftwarePipeline(Module &M, int64_t Depth);

/// Cleanup: dead-code elimination.
std::string runCanonicalize(Module &M);

//===----------------------------------------------------------------------===//
// PassManager
//===----------------------------------------------------------------------===//

/// Runs a sequence of named passes, verifying the module after each one and
/// optionally collecting IR dumps / timing.
class PassManager {
public:
  using PassFn = std::function<std::string(Module &)>;

  void addPass(std::string Name, PassFn Fn) {
    Passes.push_back({std::move(Name), std::move(Fn)});
  }

  /// Set to capture the IR after each pass (for -print-ir-after-all style
  /// debugging and the pass unit tests).
  bool DumpAfterEach = false;

  /// Runs all passes; returns "" or "<pass>: <diagnostic>".
  std::string run(Module &M);

  /// IR dumps collected when DumpAfterEach is set, one per pass.
  const std::vector<std::pair<std::string, std::string>> &getDumps() const {
    return Dumps;
  }

  /// Wall-clock seconds per pass (parallel array with the pass list).
  const std::vector<std::pair<std::string, double>> &getTimings() const {
    return Timings;
  }

private:
  std::vector<std::pair<std::string, PassFn>> Passes;
  std::vector<std::pair<std::string, std::string>> Dumps;
  std::vector<std::pair<std::string, double>> Timings;
};

/// Builds the full Tawa pipeline for \p Options into \p PM (the §III-A flow:
/// persistent? -> tagging -> warp specialization -> cooperative groups ->
/// pipelining -> aref lowering -> cleanup).
void buildTawaPipeline(PassManager &PM, const TawaOptions &Options);

} // namespace tawa

#endif // TAWA_PASSES_PASSES_H
