//===- PassManager.cpp - Pipeline orchestration --------------------------------//

#include "passes/Passes.h"

#include "ir/Ir.h"
#include "ir/Verifier.h"
#include "support/Support.h"

#include <chrono>

using namespace tawa;

std::string TawaOptions::validate() const {
  if (ArefDepth < 1)
    return "aref depth D must be >= 1";
  if (MmaPipelineDepth < 0)
    return "MMA pipeline depth P must be >= 0";
  if (MmaPipelineDepth > ArefDepth)
    return formatString("infeasible configuration: MMA pipeline depth P=%lld "
                        "exceeds aref depth D=%lld (the consumer would need "
                        "more borrowed slots than the ring holds)",
                        static_cast<long long>(MmaPipelineDepth),
                        static_cast<long long>(ArefDepth));
  if (CoarsePipeline && ArefDepth < 2)
    return "infeasible configuration: the coarse-grained T/C/U pipeline "
           "borrows the downstream-stage slot across two iterations, so it "
           "requires aref depth D >= 2";
  if (NumConsumerGroups < 1 || NumConsumerGroups > 2)
    return "cooperative consumer groups must be 1 or 2 on Hopper";
  return "";
}

std::string PassManager::run(Module &M) {
  Dumps.clear();
  Timings.clear();
  for (auto &[Name, Fn] : Passes) {
    auto Start = std::chrono::steady_clock::now();
    std::string Err = Fn(M);
    auto End = std::chrono::steady_clock::now();
    Timings.emplace_back(
        Name, std::chrono::duration<double>(End - Start).count());
    if (!Err.empty())
      return Name + ": " + Err;
    if (std::string VerifyErr = verify(M); !VerifyErr.empty())
      return Name + ": verification failed after pass: " + VerifyErr;
    if (DumpAfterEach)
      Dumps.emplace_back(Name, M.print());
  }
  return "";
}

void tawa::buildTawaPipeline(PassManager &PM, const TawaOptions &Options) {
  if (!Options.EnableWarpSpecialization) {
    // The plain Triton path: no transformation at all (the interpreter runs
    // the tile dialect synchronously); callers wanting the software-pipelined
    // Triton baseline add runSoftwarePipeline themselves.
    return;
  }
  if (Options.Persistent)
    PM.addPass("persistent-kernel", runPersistentKernel);
  PM.addPass("semantic-tagging", runSemanticTagging);
  PM.addPass("warp-specialize", [D = Options.ArefDepth](Module &M) {
    return runWarpSpecialize(M, D);
  });
  if (Options.NumConsumerGroups > 1)
    PM.addPass("cooperative-warp-groups",
               [N = Options.NumConsumerGroups](Module &M) {
                 return runCooperativeWarpGroups(M, N);
               });
  if (Options.CoarsePipeline)
    PM.addPass("coarse-grained-pipeline", runCoarseGrainedPipeline);
  else if (Options.MmaPipelineDepth > 0)
    PM.addPass("fine-grained-pipeline",
               [P = Options.MmaPipelineDepth](Module &M) {
                 return runFineGrainedPipeline(M, P);
               });
  PM.addPass("aref-lowering", runArefLowering);
  PM.addPass("canonicalize", runCanonicalize);
}
