//===- Utils.h - Shared pass utilities --------------------------*- C++ -*-===//
//
// Cloning with value remapping and backward-slice computation — the two
// primitives the partitioning / pipelining passes are built from.
//
//===----------------------------------------------------------------------===//

#ifndef TAWA_PASSES_UTILS_H
#define TAWA_PASSES_UTILS_H

#include "ir/Builder.h"
#include "ir/Ir.h"

#include <map>
#include <set>

namespace tawa {

/// Maps original values to their clones; values absent from the map are used
/// as-is (they are defined outside the cloned fragment and stay visible).
using ValueMap = std::map<Value *, Value *>;

/// Looks a value up in \p Map, defaulting to the value itself.
inline Value *mapValue(const ValueMap &Map, Value *V) {
  auto It = Map.find(V);
  return It == Map.end() ? V : It->second;
}

/// Clones \p Op (with nested regions) at \p B's insertion point, remapping
/// operands through \p Map and recording result/block-arg mappings into it.
Operation *cloneOp(Operation *Op, ValueMap &Map, OpBuilder &B);

/// Computes the backward slice of \p Roots restricted to operations inside
/// \p Scope (a block): the set of in-scope operations transitively feeding
/// the roots. Values defined outside \p Scope terminate the walk.
std::set<Operation *> computeBackwardSlice(const std::vector<Value *> &Roots,
                                           Block *Scope);

/// Erases every op in \p FuncBody (recursively) that is dead: no side
/// effects, no regions, and no used results. Runs to fixpoint.
void runDce(Block &FuncBody);

} // namespace tawa

#endif // TAWA_PASSES_UTILS_H
