//===- WorkerPool.cpp - Persistent process-wide worker pool --------------------//

#include "support/WorkerPool.h"

#include <algorithm>

using namespace tawa;

namespace {
/// True while this thread is executing a job item; nested parallelFor calls
/// run inline instead of deadlocking on the pool.
thread_local bool InsideJob = false;
} // namespace

WorkerPool::WorkerPool(int64_t NumWorkers) {
  for (int64_t I = 0; I + 1 < NumWorkers; ++I)
    Threads.emplace_back([this, I] { threadLoop(I); });
}

WorkerPool::~WorkerPool() {
  {
    // Shutdown ordering: a job published by another thread's parallelFor
    // may still be in flight (or not yet picked up). Wait for it to drain
    // before asking the threads to stop — otherwise a pool thread could
    // observe Stopping at the same wakeup that was meant to hand it the
    // job and exit mid-job, leaving the caller parked on DoneCV forever.
    // The caller clears Cur (and notifies DoneCV) once the job completed.
    std::unique_lock<std::mutex> L(Mu);
    DoneCV.wait(L, [&] { return Cur == nullptr; });
    Stopping = true;
  }
  // Barrier on the caller fully leaving parallelFor: Cur is cleared while
  // CallerMu is still held, so once this lock is acquirable the in-flight
  // caller no longer touches any member (its last action is releasing
  // CallerMu itself).
  { std::lock_guard<std::mutex> CallerLock(CallerMu); }
  WorkCV.notify_all();
  for (std::thread &T : Threads)
    T.join();
}

WorkerPool &WorkerPool::shared() {
  static WorkerPool Pool(std::max<int64_t>(hardwareWorkers(), 4));
  return Pool;
}

int64_t WorkerPool::hardwareWorkers() {
  return std::max<int64_t>(1, std::thread::hardware_concurrency());
}

void WorkerPool::runWorker(Job &J, int64_t Worker) {
  for (;;) {
    int64_t I = J.Next.fetch_add(1, std::memory_order_relaxed);
    if (I >= J.N)
      return;
    try {
      (*J.Fn)(I, Worker);
    } catch (...) {
      // Crash containment: keep the pool thread alive and the job
      // draining. The lowest throwing index wins so the exception
      // parallelFor rethrows is deterministic at any worker count.
      std::lock_guard<std::mutex> L(J.ErrMu);
      if (J.ErrIndex < 0 || I < J.ErrIndex) {
        J.ErrIndex = I;
        J.Err = std::current_exception();
      }
    }
    J.Done.fetch_add(1, std::memory_order_release);
  }
}

void WorkerPool::threadLoop(int64_t Id) {
  uint64_t SeenGen = 0;
  std::unique_lock<std::mutex> L(Mu);
  for (;;) {
    WorkCV.wait(L, [&] { return Stopping || (Cur && Gen != SeenGen); });
    if (Stopping)
      return;
    SeenGen = Gen;
    Job *J = Cur;
    if (Id + 1 >= J->MaxWorkers)
      continue; // This job is capped below our worker id.
    ++J->Active;
    L.unlock();
    InsideJob = true;
    runWorker(*J, Id + 1);
    InsideJob = false;
    L.lock();
    --J->Active;
    DoneCV.notify_all();
  }
}

void WorkerPool::parallelFor(
    int64_t N, int64_t MaxWorkers,
    const std::function<void(int64_t, int64_t)> &Fn) {
  if (N <= 0)
    return;
  MaxWorkers = std::min(MaxWorkers, getNumWorkers());
  if (InsideJob || MaxWorkers <= 1 || N == 1 || Threads.empty()) {
    for (int64_t I = 0; I < N; ++I)
      Fn(I, 0);
    return;
  }

  std::lock_guard<std::mutex> CallerLock(CallerMu);
  Job J;
  J.Fn = &Fn;
  J.N = N;
  J.MaxWorkers = MaxWorkers;
  {
    std::lock_guard<std::mutex> L(Mu);
    Cur = &J;
    ++Gen;
  }
  WorkCV.notify_all();

  InsideJob = true;
  runWorker(J, 0);
  InsideJob = false;

  // Wait for stragglers: the job (on our stack) stays alive until every
  // pool thread that picked it up has left runWorker, and Cur is cleared
  // under the lock so late wakers never see a dead job.
  std::unique_lock<std::mutex> L(Mu);
  DoneCV.wait(L, [&] {
    return J.Active == 0 && J.Done.load(std::memory_order_acquire) == J.N;
  });
  Cur = nullptr;
  // A destructor running concurrently waits on DoneCV for Cur == nullptr
  // before it may stop the threads (shutdown ordering) — wake it. Notify
  // while still holding the lock: unlocked, the destructor could wake via
  // a pool thread's earlier notify, observe Cur == nullptr, and destroy
  // the condvar while this thread is still inside notify_all on it.
  DoneCV.notify_all();
  L.unlock();
  if (J.Err)
    std::rethrow_exception(J.Err);
}
