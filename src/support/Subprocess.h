//===- Subprocess.h - fork/exec child-process primitive ---------*- C++ -*-===//
//
// The out-of-process execution sandbox's foundation (docs/serving.md): a
// child process spawned by fork + execve with a bidirectional AF_UNIX
// socketpair as its stdin/stdout, waitpid-based exit/signal
// classification, and optional rlimit caps applied in the child before
// exec. The parent talks newline-delimited frames over channel(); a dead
// peer surfaces as a send/recv error, never SIGPIPE (MSG_NOSIGNAL).
//
// This layer is transport + lifecycle only. The sandbox protocol (request
// framing, heartbeats, restart policy) lives in serve/Sandbox; the runner
// binary is tools/tawa_sandbox.cpp.
//
//===----------------------------------------------------------------------===//

#ifndef TAWA_SUPPORT_SUBPROCESS_H
#define TAWA_SUPPORT_SUBPROCESS_H

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace tawa {

class Subprocess {
public:
  struct Options {
    /// argv[0] is the executable path (execve, no PATH search).
    std::vector<std::string> Argv;
    /// Appended to (and overriding) the parent environment.
    std::vector<std::pair<std::string, std::string>> ExtraEnv;
    /// RLIMIT_AS cap in MiB; 0 = inherit. Off by default: sanitizer
    /// runtimes (ASan/TSan) reserve terabytes of virtual address space, so
    /// an AS cap would kill every sanitized child at startup.
    int64_t RlimitAsMb = 0;
    /// RLIMIT_CPU cap in seconds; 0 = inherit. A hard backstop behind the
    /// supervisor's heartbeat timeout (the kernel delivers SIGXCPU, then
    /// SIGKILL).
    int64_t RlimitCpuSec = 0;
  };

  /// How a child exited, from waitpid. describe() renders the
  /// deterministic forms "exit code N" / "signal N (NAME)" used in
  /// sandbox-crash error strings.
  struct ExitStatus {
    bool Running = true;   ///< Still alive (poll() only).
    bool Signaled = false; ///< Terminated by a signal.
    int Code = 0;          ///< Exit code when !Signaled.
    int Sig = 0;           ///< Terminating signal when Signaled.
    std::string describe() const;
  };

  /// Forks + execs. Returns null with \p Err set when the pipe/fork/exec
  /// fails (exec failures are detected in the parent via a CLOEXEC status
  /// pipe, so a missing binary reports its errno instead of a dead child).
  static std::unique_ptr<Subprocess> spawn(const Options &Opts,
                                           std::string &Err);

  /// Kills (SIGKILL by default) and reaps if still running.
  ~Subprocess();

  Subprocess(const Subprocess &) = delete;
  Subprocess &operator=(const Subprocess &) = delete;

  /// The parent's end of the socketpair wired to the child's stdin+stdout.
  int channel() const { return Channel; }
  int pid() const { return Pid; }

  /// Non-blocking reap: Running=true while the child lives; afterwards the
  /// exit/signal classification (sticky — repeat calls return the same).
  ExitStatus poll();
  /// Blocking reap.
  ExitStatus wait();
  /// Sends \p Sig if the child is still running (ESRCH is not an error).
  void kill(int Sig);

  /// "SIGKILL" / "SIGSEGV" / ... for the signals the supervisor
  /// classifies; "signal N" otherwise.
  static const char *signalName(int Sig);

private:
  Subprocess() = default;

  int Pid = -1;
  int Channel = -1;
  bool Reaped = false;
  ExitStatus Last;
};

} // namespace tawa

#endif // TAWA_SUPPORT_SUBPROCESS_H
