//===- Env.cpp - TAWA_* environment-knob parsing --------------------------===//

#include "support/Env.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <set>

using namespace tawa;

void tawa::envWarnOnce(const std::string &Key, const std::string &Message) {
  static std::mutex Mu;
  static std::set<std::string> Seen;
  std::lock_guard<std::mutex> L(Mu);
  if (!Seen.insert(Key).second)
    return;
  std::fprintf(stderr, "tawa: warning: %s\n", Message.c_str());
}

namespace {

std::string lower(const char *S) {
  std::string R;
  for (; *S; ++S)
    R.push_back(static_cast<char>(
        std::tolower(static_cast<unsigned char>(*S))));
  return R;
}

} // namespace

bool tawa::envFlag(const char *Name, bool Default) {
  const char *Raw = std::getenv(Name);
  if (!Raw)
    return Default;
  std::string V = lower(Raw);
  if (V == "1" || V == "true" || V == "on" || V == "yes")
    return true;
  if (V.empty() || V == "0" || V == "false" || V == "off" || V == "no")
    return false;
  envWarnOnce(std::string(Name) + "=" + Raw,
              std::string(Name) + "=" + Raw +
                  " is not a recognized boolean (1/0/true/false/on/off/"
                  "yes/no); treating the variable as set");
  return true;
}

int64_t tawa::envInt64(const char *Name, int64_t Default) {
  const char *Raw = std::getenv(Name);
  if (!Raw || !*Raw)
    return Default;
  char *End = nullptr;
  long long V = std::strtoll(Raw, &End, 10);
  if (End == Raw || *End != '\0') {
    envWarnOnce(std::string(Name) + "=" + Raw,
                std::string(Name) + "=" + Raw +
                    " is not an integer; using the default");
    return Default;
  }
  return static_cast<int64_t>(V);
}

std::string tawa::envString(const char *Name, const std::string &Default) {
  const char *Raw = std::getenv(Name);
  return Raw ? std::string(Raw) : Default;
}
