//===- WorkerPool.h - Persistent process-wide worker pool -------*- C++ -*-===//
//
// A lazily created, process-lifetime pool of worker threads used to run
// independent CTAs of a grid in parallel (Interpreter::runGrid). The
// calling thread is always worker 0 and participates in every job, so a
// one-core machine (or MaxWorkers = 1) degenerates to a plain inline loop
// with zero scheduling overhead.
//
// Work distribution is a shared atomic index: assignment of items to
// workers is nondeterministic, so callers must key their outputs by item
// index (never by worker or completion order) to stay deterministic — see
// docs/threading-and-memory.md.
//
//===----------------------------------------------------------------------===//

#ifndef TAWA_SUPPORT_WORKERPOOL_H
#define TAWA_SUPPORT_WORKERPOOL_H

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace tawa {

class WorkerPool {
public:
  /// Spawns NumWorkers-1 background threads (worker 0 is the caller).
  explicit WorkerPool(int64_t NumWorkers);
  /// Joins cleanly even when a job published by another thread is still
  /// queued or mid-flight: the destructor first waits for that job to
  /// drain (its parallelFor caller returns normally), then stops and
  /// joins the threads. Publishing NEW jobs once destruction has begun is
  /// still a caller bug.
  ~WorkerPool();

  WorkerPool(const WorkerPool &) = delete;
  WorkerPool &operator=(const WorkerPool &) = delete;

  /// The process-wide pool, created on first use with one worker per
  /// hardware thread — but never fewer than 4 workers, so explicit
  /// NumWorkers > 1 requests exercise real threads (and ThreadSanitizer
  /// has races to find) even on one-core CI hosts; idle threads just park
  /// on a condition variable. Persistent: repeated grids pay no thread
  /// creation. Note callers choose how many workers a *job* uses
  /// (parallelFor's MaxWorkers); the default for grid runs remains the
  /// hardware thread count (resolveNumWorkers), so small hosts still run
  /// serial unless asked otherwise.
  static WorkerPool &shared();

  /// max(1, std::thread::hardware_concurrency()).
  static int64_t hardwareWorkers();

  /// Runs Fn(Index, Worker) for every Index in [0, N), using at most
  /// MaxWorkers workers with dense ids in [0, MaxWorkers). Blocks until all
  /// indices completed; every write Fn made is visible to the caller on
  /// return. Nested calls from inside a job run inline on the calling
  /// worker.
  ///
  /// Crash containment (docs/robustness.md): an exception escaping Fn is
  /// caught on the executing worker — pool threads never die and the pool
  /// stays reusable — and rethrown here on the calling thread after the
  /// job drains. When several items throw, the lowest index wins, so with
  /// a deterministic Fn the propagated exception is identical at every
  /// MaxWorkers. Whether items after a throwing one ran is unspecified
  /// (the inline fallback stops at the throw; pooled execution keeps
  /// going), so callers needing per-item errors must catch inside Fn —
  /// this backstop only keeps the process alive.
  void parallelFor(int64_t N, int64_t MaxWorkers,
                   const std::function<void(int64_t Index, int64_t Worker)>
                       &Fn);

  int64_t getNumWorkers() const {
    return static_cast<int64_t>(Threads.size()) + 1;
  }

private:
  struct Job {
    const std::function<void(int64_t, int64_t)> *Fn = nullptr;
    int64_t N = 0;
    int64_t MaxWorkers = 0;
    std::atomic<int64_t> Next{0};   ///< Next unclaimed index.
    std::atomic<int64_t> Done{0};   ///< Completed indices.
    int64_t Active = 0;             ///< Pool threads inside the job (Mu).
    std::mutex ErrMu;               ///< Guards ErrIndex/Err (cold path).
    int64_t ErrIndex = -1;          ///< Lowest throwing index, -1 = none.
    std::exception_ptr Err;         ///< Its exception, rethrown by caller.
  };

  void threadLoop(int64_t Id);
  static void runWorker(Job &J, int64_t Worker);

  std::vector<std::thread> Threads;
  std::mutex Mu;                 ///< Guards Cur/Gen/Stopping/Job::Active.
  std::mutex CallerMu;           ///< Serializes concurrent parallelFor calls.
  std::condition_variable WorkCV, DoneCV;
  Job *Cur = nullptr;
  uint64_t Gen = 0;
  bool Stopping = false;
};

} // namespace tawa

#endif // TAWA_SUPPORT_WORKERPOOL_H
