//===- Status.cpp - Structured failure taxonomy ---------------------------===//

#include "support/Status.h"

#include <cctype>

using namespace tawa;

const char *tawa::errorKindName(ErrorKind K) {
  switch (K) {
  case ErrorKind::None:
    return "none";
  case ErrorKind::Deadlock:
    return "deadlock";
  case ErrorKind::StepBudget:
    return "step-budget";
  case ErrorKind::WallClock:
    return "wall-clock";
  case ErrorKind::ProtocolViolation:
    return "protocol-violation";
  case ErrorKind::WorkerCrash:
    return "worker-crash";
  case ErrorKind::CacheIo:
    return "cache-io";
  case ErrorKind::CorruptProgram:
    return "corrupt-program";
  case ErrorKind::CompileError:
    return "compile-error";
  case ErrorKind::Unsupported:
    return "unsupported";
  case ErrorKind::Infeasible:
    return "infeasible";
  case ErrorKind::SandboxCrash:
    return "sandbox-crash";
  case ErrorKind::SandboxTimeout:
    return "sandbox-timeout";
  case ErrorKind::Internal:
    return "internal";
  }
  return "internal";
}

bool tawa::errorKindFromName(const std::string &Name, ErrorKind &Out) {
  for (int I = 0; I <= static_cast<int>(ErrorKind::Internal); ++I) {
    ErrorKind K = static_cast<ErrorKind>(I);
    if (Name == errorKindName(K)) {
      Out = K;
      return true;
    }
  }
  return false;
}

namespace {

bool startsWith(const std::string &S, size_t At, const char *Prefix) {
  return S.compare(At, std::char_traits<char>::length(Prefix), Prefix) == 0;
}

/// Skips one "cta (x,y): " coordinate prefix (the runGrid/runCtaBatch
/// formatting) so per-CTA errors classify by their underlying message.
size_t skipCtaPrefix(const std::string &S) {
  if (!startsWith(S, 0, "cta ("))
    return 0;
  size_t I = 5;
  auto skipInt = [&] {
    size_t Begin = I;
    if (I < S.size() && S[I] == '-')
      ++I;
    while (I < S.size() && std::isdigit(static_cast<unsigned char>(S[I])))
      ++I;
    return I > Begin;
  };
  if (!skipInt() || I >= S.size() || S[I] != ',')
    return 0;
  ++I;
  if (!skipInt() || !startsWith(S, I, "): "))
    return 0;
  return I + 3;
}

} // namespace

ErrorKind tawa::classifyError(const std::string &Error) {
  if (Error.empty())
    return ErrorKind::None;
  size_t At = skipCtaPrefix(Error);
  if (startsWith(Error, At, "deadlock:"))
    return ErrorKind::Deadlock;
  if (startsWith(Error, At, "step budget"))
    return ErrorKind::StepBudget;
  if (startsWith(Error, At, "wall clock"))
    return ErrorKind::WallClock;
  if (startsWith(Error, At, "protocol violation"))
    return ErrorKind::ProtocolViolation;
  if (startsWith(Error, At, "worker crash:"))
    return ErrorKind::WorkerCrash;
  if (startsWith(Error, At, "cache io:"))
    return ErrorKind::CacheIo;
  if (startsWith(Error, At, "corrupt program:"))
    return ErrorKind::CorruptProgram;
  if (startsWith(Error, At, "compile: "))
    return ErrorKind::CompileError;
  if (startsWith(Error, At, "sandbox crash:") ||
      startsWith(Error, At, "sandbox spawn:"))
    return ErrorKind::SandboxCrash;
  if (startsWith(Error, At, "sandbox timeout"))
    return ErrorKind::SandboxTimeout;
  return ErrorKind::Internal;
}
