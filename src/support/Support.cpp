//===- Support.cpp - Small shared utilities -------------------------------===//

#include "support/Support.h"

#include <cstdarg>

using namespace tawa;

void tawa::reportFatalError(const std::string &Message) {
  std::fprintf(stderr, "tawa fatal error: %s\n", Message.c_str());
  std::abort();
}

std::string tawa::formatString(const char *Fmt, ...) {
  va_list Args;
  va_start(Args, Fmt);
  va_list ArgsCopy;
  va_copy(ArgsCopy, Args);
  int Size = std::vsnprintf(nullptr, 0, Fmt, Args);
  va_end(Args);
  std::string Result(Size, '\0');
  std::vsnprintf(Result.data(), Size + 1, Fmt, ArgsCopy);
  va_end(ArgsCopy);
  return Result;
}
