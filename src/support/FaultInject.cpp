//===- FaultInject.cpp - Deterministic fault-injection points -------------===//

#include "support/FaultInject.h"

#include "support/Env.h"
#include "support/Support.h"

#include <cstdlib>
#include <mutex>

using namespace tawa;
using namespace tawa::faults;

std::atomic<bool> faults::detail::Armed{false};

namespace {

struct SiteConfig {
  bool Active = false;
  double Rate = 0.0;
  uint64_t Seed = 0;
};

// Mu guards Sites during (re)configuration; decisions read Sites without
// it. configure() is documented for test setup / process start, before the
// faulting workload runs, so the only unlocked reads race nothing.
std::mutex Mu;
SiteConfig Sites[NumSites];
std::atomic<uint64_t> Counters[NumSites];
std::string AcceptedSpec; ///< Last spec configure() accepted; Mu-guarded.

bool parseSite(const std::string &Name, Site &S) {
  for (int I = 0; I < NumSites; ++I) {
    if (Name == siteName(static_cast<Site>(I))) {
      S = static_cast<Site>(I);
      return true;
    }
  }
  return false;
}

bool decide(const SiteConfig &C, uint64_t Key) {
  if (!C.Active)
    return false;
  if (C.Rate >= 1.0)
    return true;
  uint64_t H = fnv1a64(&C.Seed, sizeof(C.Seed));
  H = fnv1a64(&Key, sizeof(Key), H);
  // Top 53 bits -> uniform double in [0, 1).
  return static_cast<double>(H >> 11) * 0x1p-53 < C.Rate;
}

// Arms fault points from TAWA_FAULTS before main; a malformed spec warns
// and leaves everything disarmed (fail-safe: never fault by accident).
struct EnvInit {
  EnvInit() {
    const char *Spec = std::getenv("TAWA_FAULTS");
    if (!Spec || !*Spec)
      return;
    std::string Err;
    if (!faults::configure(Spec, &Err))
      envWarnOnce(std::string("TAWA_FAULTS=") + Spec,
                  "ignoring TAWA_FAULTS: " + Err);
  }
} Init;

} // namespace

const char *faults::siteName(Site S) {
  switch (S) {
  case Site::CacheRead:
    return "cache-read";
  case Site::CacheWrite:
    return "cache-write";
  case Site::Deserialize:
    return "deserialize";
  case Site::ArenaAlloc:
    return "arena-alloc";
  case Site::WorkerTask:
    return "worker-task";
  case Site::SandboxSpawn:
    return "sandbox.spawn";
  case Site::SandboxKill:
    return "sandbox.kill";
  case Site::SandboxHang:
    return "sandbox.hang";
  case Site::ServeResponseWrite:
    return "serve.response-write";
  }
  return "?";
}

bool faults::shouldFail(Site S, uint64_t Key) {
  return decide(Sites[static_cast<int>(S)], Key);
}

bool faults::shouldFailNext(Site S) {
  const SiteConfig &C = Sites[static_cast<int>(S)];
  if (!C.Active)
    return false;
  uint64_t Key =
      Counters[static_cast<int>(S)].fetch_add(1, std::memory_order_relaxed);
  return decide(C, Key);
}

bool faults::configure(const std::string &Spec, std::string *Err) {
  SiteConfig Parsed[NumSites];
  size_t At = 0;
  while (At < Spec.size()) {
    size_t End = Spec.find(',', At);
    if (End == std::string::npos)
      End = Spec.size();
    std::string Item = Spec.substr(At, End - At);
    At = End + 1;
    if (Item.empty())
      continue;
    size_t C1 = Item.find(':');
    size_t C2 = C1 == std::string::npos ? std::string::npos
                                        : Item.find(':', C1 + 1);
    if (C1 == std::string::npos || C2 == std::string::npos) {
      if (Err)
        *Err = "expected site:rate:seed, got \"" + Item + "\"";
      reset();
      return false;
    }
    Site S;
    if (!parseSite(Item.substr(0, C1), S)) {
      if (Err)
        *Err = "unknown fault site \"" + Item.substr(0, C1) + "\"";
      reset();
      return false;
    }
    char *RateEnd = nullptr;
    std::string RateStr = Item.substr(C1 + 1, C2 - C1 - 1);
    double Rate = std::strtod(RateStr.c_str(), &RateEnd);
    if (RateStr.empty() || *RateEnd != '\0' || Rate < 0.0 || Rate > 1.0) {
      if (Err)
        *Err = "rate \"" + RateStr + "\" is not in [0, 1]";
      reset();
      return false;
    }
    char *SeedEnd = nullptr;
    std::string SeedStr = Item.substr(C2 + 1);
    unsigned long long Seed = std::strtoull(SeedStr.c_str(), &SeedEnd, 10);
    if (SeedStr.empty() || *SeedEnd != '\0') {
      if (Err)
        *Err = "seed \"" + SeedStr + "\" is not a nonnegative integer";
      reset();
      return false;
    }
    Parsed[static_cast<int>(S)] = {true, Rate, Seed};
  }

  std::lock_guard<std::mutex> L(Mu);
  bool Any = false;
  for (int I = 0; I < NumSites; ++I) {
    Sites[I] = Parsed[I];
    Counters[I].store(0, std::memory_order_relaxed);
    Any |= Parsed[I].Active;
  }
  detail::Armed.store(Any, std::memory_order_relaxed);
  AcceptedSpec = Any ? Spec : std::string();
  return true;
}

void faults::reset() {
  std::lock_guard<std::mutex> L(Mu);
  for (int I = 0; I < NumSites; ++I) {
    Sites[I] = SiteConfig();
    Counters[I].store(0, std::memory_order_relaxed);
  }
  detail::Armed.store(false, std::memory_order_relaxed);
  AcceptedSpec.clear();
}

std::string faults::currentSpec() {
  std::lock_guard<std::mutex> L(Mu);
  return AcceptedSpec;
}
