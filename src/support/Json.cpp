//===- Json.cpp - Minimal deterministic JSON writer --------------------------//

#include "support/Json.h"

#include "support/Support.h"

#include <cassert>
#include <cerrno>
#include <cmath>
#include <cstdlib>

using namespace tawa;

std::string JsonWriter::escape(const std::string &S) {
  std::string Out;
  Out.reserve(S.size());
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\r':
      Out += "\\r";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20)
        Out += formatString("\\u%04x", C);
      else
        Out += C;
    }
  }
  return Out;
}

void JsonWriter::prepare() {
  if (PendingKey) {
    // A key was just written; the value follows inline.
    PendingKey = false;
    return;
  }
  if (Stack.empty())
    return;
  if (HasElem.back() == '1')
    Out += ',';
  HasElem.back() = '1';
  Out += '\n';
  Out.append(Stack.size() * 2, ' ');
}

JsonWriter &JsonWriter::beginObject() {
  prepare();
  Out += '{';
  Stack += 'O';
  HasElem += '0';
  return *this;
}

JsonWriter &JsonWriter::endObject() {
  assert(!Stack.empty() && Stack.back() == 'O' && "endObject outside object");
  bool Empty = HasElem.back() == '0';
  Stack.pop_back();
  HasElem.pop_back();
  if (!Empty) {
    Out += '\n';
    Out.append(Stack.size() * 2, ' ');
  }
  Out += '}';
  return *this;
}

JsonWriter &JsonWriter::beginArray() {
  prepare();
  Out += '[';
  Stack += 'A';
  HasElem += '0';
  return *this;
}

JsonWriter &JsonWriter::endArray() {
  assert(!Stack.empty() && Stack.back() == 'A' && "endArray outside array");
  bool Empty = HasElem.back() == '0';
  Stack.pop_back();
  HasElem.pop_back();
  if (!Empty) {
    Out += '\n';
    Out.append(Stack.size() * 2, ' ');
  }
  Out += ']';
  return *this;
}

JsonWriter &JsonWriter::key(const std::string &K) {
  assert(!Stack.empty() && Stack.back() == 'O' && "key outside object");
  prepare();
  Out += '"';
  Out += escape(K);
  Out += "\": ";
  PendingKey = true;
  return *this;
}

JsonWriter &JsonWriter::value(const std::string &S) {
  prepare();
  Out += '"';
  Out += escape(S);
  Out += '"';
  return *this;
}

JsonWriter &JsonWriter::value(const char *S) {
  return value(std::string(S));
}

JsonWriter &JsonWriter::value(bool B) {
  prepare();
  Out += B ? "true" : "false";
  return *this;
}

JsonWriter &JsonWriter::value(int64_t N) {
  prepare();
  Out += formatString("%lld", static_cast<long long>(N));
  return *this;
}

JsonWriter &JsonWriter::value(uint64_t N) {
  prepare();
  Out += formatString("%llu", static_cast<unsigned long long>(N));
  return *this;
}

JsonWriter &JsonWriter::value(double V, int Decimals) {
  prepare();
  if (!std::isfinite(V))
    Out += "null";
  else
    Out += formatString("%.*f", Decimals, V);
  return *this;
}

JsonWriter &JsonWriter::field(const std::string &K, const std::string &S) {
  return key(K).value(S);
}
JsonWriter &JsonWriter::field(const std::string &K, const char *S) {
  return key(K).value(S);
}
JsonWriter &JsonWriter::field(const std::string &K, bool B) {
  return key(K).value(B);
}
JsonWriter &JsonWriter::field(const std::string &K, int64_t N) {
  return key(K).value(N);
}
JsonWriter &JsonWriter::field(const std::string &K, uint64_t N) {
  return key(K).value(N);
}
JsonWriter &JsonWriter::field(const std::string &K, double V, int Decimals) {
  return key(K).value(V, Decimals);
}

std::string JsonWriter::str() const {
  assert(Stack.empty() && "unbalanced begin/end");
  return Out + "\n";
}

//===----------------------------------------------------------------------===//
// JsonValue
//===----------------------------------------------------------------------===//

JsonValue JsonValue::makeBool(bool B) {
  JsonValue V;
  V.K = Kind::Bool;
  V.B = B;
  return V;
}
JsonValue JsonValue::makeInt(int64_t N) {
  JsonValue V;
  V.K = Kind::Int;
  V.I = N;
  return V;
}
JsonValue JsonValue::makeDouble(double D) {
  JsonValue V;
  V.K = Kind::Double;
  V.D = D;
  return V;
}
JsonValue JsonValue::makeString(std::string S) {
  JsonValue V;
  V.K = Kind::String;
  V.S = std::move(S);
  return V;
}
JsonValue JsonValue::makeArray() {
  JsonValue V;
  V.K = Kind::Array;
  return V;
}
JsonValue JsonValue::makeObject() {
  JsonValue V;
  V.K = Kind::Object;
  return V;
}

int64_t JsonValue::asInt64() const {
  return K == Kind::Double ? static_cast<int64_t>(D) : I;
}

double JsonValue::asDouble() const {
  return K == Kind::Int ? static_cast<double>(I) : D;
}

const JsonValue *JsonValue::find(const std::string &Key) const {
  if (K != Kind::Object)
    return nullptr;
  for (const Member &M : Obj)
    if (M.first == Key)
      return &M.second;
  return nullptr;
}

int64_t JsonValue::getInt(const std::string &Key, int64_t Default,
                          std::string *TypeErr) const {
  const JsonValue *V = find(Key);
  if (!V)
    return Default;
  if (!V->isNumber()) {
    if (TypeErr && TypeErr->empty())
      *TypeErr = Key;
    return Default;
  }
  return V->asInt64();
}

bool JsonValue::getBool(const std::string &Key, bool Default,
                        std::string *TypeErr) const {
  const JsonValue *V = find(Key);
  if (!V)
    return Default;
  if (!V->isBool()) {
    if (TypeErr && TypeErr->empty())
      *TypeErr = Key;
    return Default;
  }
  return V->asBool();
}

std::string JsonValue::getString(const std::string &Key,
                                 const std::string &Default,
                                 std::string *TypeErr) const {
  const JsonValue *V = find(Key);
  if (!V)
    return Default;
  if (!V->isString()) {
    if (TypeErr && TypeErr->empty())
      *TypeErr = Key;
    return Default;
  }
  return V->asString();
}

void JsonValue::writeTo(JsonWriter &W, int Decimals) const {
  switch (K) {
  case Kind::Null:
    // JsonWriter has no explicit null; a non-finite double renders one.
    W.value(std::nan(""), Decimals);
    break;
  case Kind::Bool:
    W.value(B);
    break;
  case Kind::Int:
    W.value(I);
    break;
  case Kind::Double:
    W.value(D, Decimals);
    break;
  case Kind::String:
    W.value(S);
    break;
  case Kind::Array:
    W.beginArray();
    for (const JsonValue &E : Arr)
      E.writeTo(W, Decimals);
    W.endArray();
    break;
  case Kind::Object:
    W.beginObject();
    for (const Member &M : Obj) {
      W.key(M.first);
      M.second.writeTo(W, Decimals);
    }
    W.endObject();
    break;
  }
}

//===----------------------------------------------------------------------===//
// Parser
//===----------------------------------------------------------------------===//

namespace {

/// Strict recursive-descent JSON parser. Every rejection records the byte
/// offset it fired at; the first error wins.
class JsonParser {
public:
  JsonParser(const std::string &Text) : Text(Text) {}

  bool parse(JsonValue &Out, std::string &Err) {
    skipWs();
    if (!parseValue(Out, 0))
      return fail(Err);
    skipWs();
    if (Pos != Text.size()) {
      error(Pos, "trailing content after document");
      return fail(Err);
    }
    return true;
  }

private:
  const std::string &Text;
  size_t Pos = 0;
  size_t ErrPos = 0;
  std::string ErrMsg;

  bool fail(std::string &Err) {
    if (ErrMsg.empty())
      return true;
    Err = formatString("byte %zu: %s", ErrPos, ErrMsg.c_str());
    return false;
  }

  bool error(size_t At, const std::string &Msg) {
    if (ErrMsg.empty()) {
      ErrPos = At;
      ErrMsg = Msg;
    }
    return false;
  }

  void skipWs() {
    while (Pos < Text.size() &&
           (Text[Pos] == ' ' || Text[Pos] == '\t' || Text[Pos] == '\n' ||
            Text[Pos] == '\r'))
      ++Pos;
  }

  bool atEnd() const { return Pos >= Text.size(); }

  bool literal(const char *Word, size_t Len) {
    if (Text.compare(Pos, Len, Word) != 0)
      return error(Pos, "invalid literal");
    Pos += Len;
    return true;
  }

  bool parseValue(JsonValue &Out, int Depth) {
    if (Depth > JsonMaxDepth)
      return error(Pos, "nesting too deep");
    if (atEnd())
      return error(Pos, "unexpected end of input");
    switch (Text[Pos]) {
    case '{':
      return parseObject(Out, Depth);
    case '[':
      return parseArray(Out, Depth);
    case '"': {
      std::string S;
      if (!parseString(S))
        return false;
      Out = JsonValue::makeString(std::move(S));
      return true;
    }
    case 't':
      if (!literal("true", 4))
        return false;
      Out = JsonValue::makeBool(true);
      return true;
    case 'f':
      if (!literal("false", 5))
        return false;
      Out = JsonValue::makeBool(false);
      return true;
    case 'n':
      if (!literal("null", 4))
        return false;
      Out = JsonValue();
      return true;
    default:
      return parseNumber(Out);
    }
  }

  bool parseObject(JsonValue &Out, int Depth) {
    ++Pos; // '{'
    Out = JsonValue::makeObject();
    skipWs();
    if (!atEnd() && Text[Pos] == '}') {
      ++Pos;
      return true;
    }
    for (;;) {
      skipWs();
      if (atEnd() || Text[Pos] != '"')
        return error(Pos, "expected object key string");
      std::string Key;
      if (!parseString(Key))
        return false;
      skipWs();
      if (atEnd() || Text[Pos] != ':')
        return error(Pos, "expected ':' after object key");
      ++Pos;
      skipWs();
      JsonValue V;
      if (!parseValue(V, Depth + 1))
        return false;
      Out.members().emplace_back(std::move(Key), std::move(V));
      skipWs();
      if (atEnd())
        return error(Pos, "unterminated object");
      if (Text[Pos] == ',') {
        ++Pos;
        continue;
      }
      if (Text[Pos] == '}') {
        ++Pos;
        return true;
      }
      return error(Pos, "expected ',' or '}' in object");
    }
  }

  bool parseArray(JsonValue &Out, int Depth) {
    ++Pos; // '['
    Out = JsonValue::makeArray();
    skipWs();
    if (!atEnd() && Text[Pos] == ']') {
      ++Pos;
      return true;
    }
    for (;;) {
      skipWs();
      JsonValue V;
      if (!parseValue(V, Depth + 1))
        return false;
      Out.elements().push_back(std::move(V));
      skipWs();
      if (atEnd())
        return error(Pos, "unterminated array");
      if (Text[Pos] == ',') {
        ++Pos;
        continue;
      }
      if (Text[Pos] == ']') {
        ++Pos;
        return true;
      }
      return error(Pos, "expected ',' or ']' in array");
    }
  }

  static void appendUtf8(std::string &S, uint32_t Cp) {
    if (Cp < 0x80) {
      S += static_cast<char>(Cp);
    } else if (Cp < 0x800) {
      S += static_cast<char>(0xc0 | (Cp >> 6));
      S += static_cast<char>(0x80 | (Cp & 0x3f));
    } else if (Cp < 0x10000) {
      S += static_cast<char>(0xe0 | (Cp >> 12));
      S += static_cast<char>(0x80 | ((Cp >> 6) & 0x3f));
      S += static_cast<char>(0x80 | (Cp & 0x3f));
    } else {
      S += static_cast<char>(0xf0 | (Cp >> 18));
      S += static_cast<char>(0x80 | ((Cp >> 12) & 0x3f));
      S += static_cast<char>(0x80 | ((Cp >> 6) & 0x3f));
      S += static_cast<char>(0x80 | (Cp & 0x3f));
    }
  }

  bool parseHex4(uint32_t &Out) {
    if (Pos + 4 > Text.size())
      return error(Pos, "truncated \\u escape");
    Out = 0;
    for (int I = 0; I < 4; ++I) {
      char C = Text[Pos + I];
      uint32_t Digit;
      if (C >= '0' && C <= '9')
        Digit = C - '0';
      else if (C >= 'a' && C <= 'f')
        Digit = C - 'a' + 10;
      else if (C >= 'A' && C <= 'F')
        Digit = C - 'A' + 10;
      else
        return error(Pos + I, "invalid hex digit in \\u escape");
      Out = Out * 16 + Digit;
    }
    Pos += 4;
    return true;
  }

  bool parseString(std::string &Out) {
    ++Pos; // '"'
    Out.clear();
    for (;;) {
      if (atEnd())
        return error(Pos, "unterminated string");
      unsigned char C = Text[Pos];
      if (C == '"') {
        ++Pos;
        return true;
      }
      if (C < 0x20)
        return error(Pos, "unescaped control character in string");
      if (C != '\\') {
        Out += static_cast<char>(C);
        ++Pos;
        continue;
      }
      size_t EscAt = Pos;
      ++Pos;
      if (atEnd())
        return error(EscAt, "truncated escape");
      char E = Text[Pos++];
      switch (E) {
      case '"':
        Out += '"';
        break;
      case '\\':
        Out += '\\';
        break;
      case '/':
        Out += '/';
        break;
      case 'b':
        Out += '\b';
        break;
      case 'f':
        Out += '\f';
        break;
      case 'n':
        Out += '\n';
        break;
      case 'r':
        Out += '\r';
        break;
      case 't':
        Out += '\t';
        break;
      case 'u': {
        uint32_t Cp;
        if (!parseHex4(Cp))
          return false;
        if (Cp >= 0xd800 && Cp <= 0xdbff) {
          // High surrogate: a \uDC00-\uDFFF low half must follow.
          if (Pos + 1 >= Text.size() || Text[Pos] != '\\' ||
              Text[Pos + 1] != 'u')
            return error(EscAt, "unpaired surrogate");
          Pos += 2;
          uint32_t Lo;
          if (!parseHex4(Lo))
            return false;
          if (Lo < 0xdc00 || Lo > 0xdfff)
            return error(EscAt, "invalid low surrogate");
          Cp = 0x10000 + ((Cp - 0xd800) << 10) + (Lo - 0xdc00);
        } else if (Cp >= 0xdc00 && Cp <= 0xdfff) {
          return error(EscAt, "unpaired surrogate");
        }
        appendUtf8(Out, Cp);
        break;
      }
      default:
        return error(EscAt, "invalid escape character");
      }
    }
  }

  bool parseNumber(JsonValue &Out) {
    size_t Start = Pos;
    if (!atEnd() && Text[Pos] == '-')
      ++Pos;
    if (atEnd() || Text[Pos] < '0' || Text[Pos] > '9')
      return error(Start, "invalid value");
    if (Text[Pos] == '0') {
      ++Pos; // No leading zeros.
      if (!atEnd() && Text[Pos] >= '0' && Text[Pos] <= '9')
        return error(Pos, "leading zero in number");
    } else {
      while (!atEnd() && Text[Pos] >= '0' && Text[Pos] <= '9')
        ++Pos;
    }
    bool Integral = true;
    if (!atEnd() && Text[Pos] == '.') {
      Integral = false;
      ++Pos;
      if (atEnd() || Text[Pos] < '0' || Text[Pos] > '9')
        return error(Pos, "expected digit after decimal point");
      while (!atEnd() && Text[Pos] >= '0' && Text[Pos] <= '9')
        ++Pos;
    }
    if (!atEnd() && (Text[Pos] == 'e' || Text[Pos] == 'E')) {
      Integral = false;
      ++Pos;
      if (!atEnd() && (Text[Pos] == '+' || Text[Pos] == '-'))
        ++Pos;
      if (atEnd() || Text[Pos] < '0' || Text[Pos] > '9')
        return error(Pos, "expected digit in exponent");
      while (!atEnd() && Text[Pos] >= '0' && Text[Pos] <= '9')
        ++Pos;
    }
    std::string Tok = Text.substr(Start, Pos - Start);
    if (Integral) {
      errno = 0;
      char *End = nullptr;
      long long V = std::strtoll(Tok.c_str(), &End, 10);
      if (errno == 0 && End && *End == '\0') {
        Out = JsonValue::makeInt(static_cast<int64_t>(V));
        return true;
      }
      // int64 overflow: fall through to double.
    }
    errno = 0;
    char *End = nullptr;
    double D = std::strtod(Tok.c_str(), &End);
    if (!End || *End != '\0')
      return error(Start, "malformed number");
    Out = JsonValue::makeDouble(D);
    return true;
  }
};

} // namespace

bool tawa::parseJson(const std::string &Text, JsonValue &Out,
                     std::string &Err) {
  Err.clear();
  JsonParser P(Text);
  return P.parse(Out, Err);
}
