//===- Json.cpp - Minimal deterministic JSON writer --------------------------//

#include "support/Json.h"

#include "support/Support.h"

#include <cassert>
#include <cmath>

using namespace tawa;

std::string JsonWriter::escape(const std::string &S) {
  std::string Out;
  Out.reserve(S.size());
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\r':
      Out += "\\r";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20)
        Out += formatString("\\u%04x", C);
      else
        Out += C;
    }
  }
  return Out;
}

void JsonWriter::prepare() {
  if (PendingKey) {
    // A key was just written; the value follows inline.
    PendingKey = false;
    return;
  }
  if (Stack.empty())
    return;
  if (HasElem.back() == '1')
    Out += ',';
  HasElem.back() = '1';
  Out += '\n';
  Out.append(Stack.size() * 2, ' ');
}

JsonWriter &JsonWriter::beginObject() {
  prepare();
  Out += '{';
  Stack += 'O';
  HasElem += '0';
  return *this;
}

JsonWriter &JsonWriter::endObject() {
  assert(!Stack.empty() && Stack.back() == 'O' && "endObject outside object");
  bool Empty = HasElem.back() == '0';
  Stack.pop_back();
  HasElem.pop_back();
  if (!Empty) {
    Out += '\n';
    Out.append(Stack.size() * 2, ' ');
  }
  Out += '}';
  return *this;
}

JsonWriter &JsonWriter::beginArray() {
  prepare();
  Out += '[';
  Stack += 'A';
  HasElem += '0';
  return *this;
}

JsonWriter &JsonWriter::endArray() {
  assert(!Stack.empty() && Stack.back() == 'A' && "endArray outside array");
  bool Empty = HasElem.back() == '0';
  Stack.pop_back();
  HasElem.pop_back();
  if (!Empty) {
    Out += '\n';
    Out.append(Stack.size() * 2, ' ');
  }
  Out += ']';
  return *this;
}

JsonWriter &JsonWriter::key(const std::string &K) {
  assert(!Stack.empty() && Stack.back() == 'O' && "key outside object");
  prepare();
  Out += '"';
  Out += escape(K);
  Out += "\": ";
  PendingKey = true;
  return *this;
}

JsonWriter &JsonWriter::value(const std::string &S) {
  prepare();
  Out += '"';
  Out += escape(S);
  Out += '"';
  return *this;
}

JsonWriter &JsonWriter::value(const char *S) {
  return value(std::string(S));
}

JsonWriter &JsonWriter::value(bool B) {
  prepare();
  Out += B ? "true" : "false";
  return *this;
}

JsonWriter &JsonWriter::value(int64_t N) {
  prepare();
  Out += formatString("%lld", static_cast<long long>(N));
  return *this;
}

JsonWriter &JsonWriter::value(uint64_t N) {
  prepare();
  Out += formatString("%llu", static_cast<unsigned long long>(N));
  return *this;
}

JsonWriter &JsonWriter::value(double V, int Decimals) {
  prepare();
  if (!std::isfinite(V))
    Out += "null";
  else
    Out += formatString("%.*f", Decimals, V);
  return *this;
}

JsonWriter &JsonWriter::field(const std::string &K, const std::string &S) {
  return key(K).value(S);
}
JsonWriter &JsonWriter::field(const std::string &K, const char *S) {
  return key(K).value(S);
}
JsonWriter &JsonWriter::field(const std::string &K, bool B) {
  return key(K).value(B);
}
JsonWriter &JsonWriter::field(const std::string &K, int64_t N) {
  return key(K).value(N);
}
JsonWriter &JsonWriter::field(const std::string &K, uint64_t N) {
  return key(K).value(N);
}
JsonWriter &JsonWriter::field(const std::string &K, double V, int Decimals) {
  return key(K).value(V, Decimals);
}

std::string JsonWriter::str() const {
  assert(Stack.empty() && "unbalanced begin/end");
  return Out + "\n";
}
