//===- Casting.h - LLVM-style isa/cast/dyn_cast templates -------*- C++ -*-===//
//
// Part of the Tawa reproduction. Follows the LLVM hand-rolled RTTI idiom
// described in llvm/Support/Casting.h: classes opt in by providing a static
// `classof(const Base *)` predicate.
//
//===----------------------------------------------------------------------===//

#ifndef TAWA_SUPPORT_CASTING_H
#define TAWA_SUPPORT_CASTING_H

#include <cassert>
#include <type_traits>

namespace tawa {

/// Returns true if \p Val is an instance of any of the types \p To...
/// (checked via each type's `classof`).
template <typename To, typename From> bool isa(const From *Val) {
  assert(Val && "isa<> used on a null pointer");
  return To::classof(Val);
}

template <typename To, typename To2, typename... Rest, typename From>
bool isa(const From *Val) {
  return isa<To>(Val) || isa<To2, Rest...>(Val);
}

/// Checked cast: asserts that \p Val really is a \p To.
template <typename To, typename From> To *cast(From *Val) {
  assert(isa<To>(Val) && "cast<> argument of incompatible type");
  return static_cast<To *>(Val);
}

template <typename To, typename From> const To *cast(const From *Val) {
  assert(isa<To>(Val) && "cast<> argument of incompatible type");
  return static_cast<const To *>(Val);
}

/// Checking cast: returns null when \p Val is not a \p To.
template <typename To, typename From> To *dyn_cast(From *Val) {
  return isa<To>(Val) ? static_cast<To *>(Val) : nullptr;
}

template <typename To, typename From> const To *dyn_cast(const From *Val) {
  return isa<To>(Val) ? static_cast<const To *>(Val) : nullptr;
}

/// Like isa<>, but tolerates null pointers (returning false).
template <typename To, typename From> bool isa_and_present(const From *Val) {
  return Val && isa<To>(Val);
}

/// Like dyn_cast<>, but tolerates null pointers (propagating them).
template <typename To, typename From> To *dyn_cast_if_present(From *Val) {
  return Val && isa<To>(Val) ? static_cast<To *>(Val) : nullptr;
}

} // namespace tawa

#endif // TAWA_SUPPORT_CASTING_H
