//===- FaultInject.h - Deterministic fault-injection points ----*- C++ -*--===//
//
// Named, seeded fault points compiled into the hot paths that are supposed
// to degrade gracefully (disk-cache IO, program deserialization, arena
// allocation, worker-task dispatch), so the graceful-degradation claims in
// docs/robustness.md are tested rather than asserted.
//
// Two determinism disciplines, matching the two kinds of call site:
//
//   * shouldFail(Site, Key): pure hash of (site seed, caller key) — no
//     state. Call sites that run concurrently (worker tasks) pass their
//     serial item index as the key, so exactly the same items fault at
//     NumWorkers 1, 2, and 8.
//   * shouldFailNext(Site): hashes a per-site monotonic counter —
//     deterministic for serial call sites (the cache talks to disk under
//     its own lock) or at rate 1.0.
//
// Activation is via TAWA_FAULTS="site:rate:seed[,site:rate:seed...]"
// (rate in [0,1], seed a nonnegative integer; see docs/robustness.md), or
// configure() from tests. When nothing is armed the per-call cost is one
// relaxed atomic load of a bool — enabled() is checked before any hashing
// — so the framework stays compiled into release builds.
//
//===----------------------------------------------------------------------===//

#ifndef TAWA_SUPPORT_FAULTINJECT_H
#define TAWA_SUPPORT_FAULTINJECT_H

#include <atomic>
#include <cstdint>
#include <string>

namespace tawa {
namespace faults {

enum class Site {
  CacheRead,   ///< ProgramCache disk load: simulated read-IO failure.
  CacheWrite,  ///< ProgramCache disk save: simulated write-IO failure.
  Deserialize, ///< Serialized program bytes corrupted before decoding.
  ArenaAlloc,  ///< TileArena::alloc throws std::bad_alloc.
  WorkerTask,  ///< CTA execution task throws (crash-containment drill).
  SandboxSpawn,      ///< Supervisor fails to spawn a sandbox process.
  SandboxKill,       ///< Sandbox child raises SIGKILL on itself mid-request.
  SandboxHang,       ///< Sandbox child freezes (heartbeat stops) mid-request.
  ServeResponseWrite,///< Socket response write fails after execution.
};
constexpr int NumSites = 9;

/// Stable site name used in the TAWA_FAULTS grammar ("cache-read", ...).
const char *siteName(Site S);

namespace detail {
extern std::atomic<bool> Armed;
}

/// True iff any site is armed. The only cost on hot paths when fault
/// injection is idle.
inline bool enabled() {
  return detail::Armed.load(std::memory_order_relaxed);
}

/// Stateless decision: true iff \p S is armed and hash(seed, Key) lands
/// under the site's rate. Same (spec, Key) -> same answer, regardless of
/// thread or call order.
bool shouldFail(Site S, uint64_t Key);

/// Stateful decision for serial call sites: like shouldFail keyed by a
/// per-site counter that increments on every call while the site is armed.
bool shouldFailNext(Site S);

/// (Re)configures from \p Spec, replacing any previous configuration.
/// Empty spec disarms everything. Returns false (and sets \p Err) on a
/// malformed spec, leaving all sites disarmed. Tests use this directly;
/// TAWA_FAULTS feeds it at process start.
bool configure(const std::string &Spec, std::string *Err = nullptr);

/// Disarms every site and resets the shouldFailNext counters.
void reset();

/// The spec string the last successful configure() accepted ("" when
/// disarmed). The sandbox supervisor forwards it to child processes with
/// every request frame, so a spec armed in the parent (chaos soak, a
/// request-carried fuzz.faults attribute) faults identically out of
/// process — and a reset() in the parent disarms children on their next
/// request rather than leaving stale faults armed.
std::string currentSpec();

} // namespace faults
} // namespace tawa

#endif // TAWA_SUPPORT_FAULTINJECT_H
