//===- Status.h - Structured failure taxonomy -------------------*- C++ -*-===//
//
// The execution layer reports failures as deterministic strings (the
// three-way differential test pins them bit-identical across engines), so
// the structured taxonomy is derived FROM the strings rather than threaded
// through every return path: classifyError maps the stable message
// prefixes both engines emit onto a small ErrorKind enum, and
// RunResult::Kind carries the classification to harness code (daemon
// callers, differential fuzzers) that must branch on failure class without
// substring matching.
//
// The mapping is total: any non-empty message that matches no known prefix
// is Internal — an unclassified failure is itself a bug worth surfacing.
// See docs/robustness.md for the taxonomy and which layer produces each
// kind.
//
//===----------------------------------------------------------------------===//

#ifndef TAWA_SUPPORT_STATUS_H
#define TAWA_SUPPORT_STATUS_H

#include <string>

namespace tawa {

enum class ErrorKind {
  None,              ///< Empty message: success.
  Deadlock,          ///< Every warp group blocked on an mbarrier wait.
  StepBudget,        ///< Execution watchdog: per-CTA step budget exceeded.
  WallClock,         ///< Execution watchdog: per-CTA wall-clock guard fired.
  ProtocolViolation, ///< Slot-monitor / happens-before protocol violation.
  WorkerCrash,       ///< Exception contained in a CTA execution task.
  CacheIo,           ///< Disk program-cache read/write IO failure.
  CorruptProgram,    ///< Serialized program failed deserialization.
  CompileError,      ///< Lowering / pass-pipeline failure.
  Unsupported,       ///< Framework or engine rejected the configuration.
  Infeasible,        ///< Resource model rejection (regs/smem budget).
  SandboxCrash,      ///< Out-of-process sandbox died (signal / bad exit).
  SandboxTimeout,    ///< Sandbox heartbeat lost or deadline exceeded.
  Internal,          ///< Anything else — an unclassified failure.
};

/// Stable lower-case name ("deadlock", "step-budget", ...) used in the
/// tawa-diag-v1 JSON schema and log output.
const char *errorKindName(ErrorKind K);

/// Classifies an execution/compile error message by its deterministic
/// prefix. A "cta (x,y): " coordinate prefix (Interpreter::runGrid /
/// runCtaBatch formatting) is skipped first. Empty -> None; unknown ->
/// Internal.
ErrorKind classifyError(const std::string &Error);

/// Inverse of errorKindName: decodes a wire-carried kind name (the
/// sandbox supervisor reads `error_kind` back out of a child process's
/// tawa-serve-resp-v1 line). Returns false on unknown names.
bool errorKindFromName(const std::string &Name, ErrorKind &Out);

} // namespace tawa

#endif // TAWA_SUPPORT_STATUS_H
