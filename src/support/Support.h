//===- Support.h - Small shared utilities -----------------------*- C++ -*-===//
//
// Formatting, fatal-error reporting, and tiny ADT helpers used across the
// Tawa reproduction. Kept deliberately small; prefer the standard library.
//
//===----------------------------------------------------------------------===//

#ifndef TAWA_SUPPORT_SUPPORT_H
#define TAWA_SUPPORT_SUPPORT_H

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>

namespace tawa {

/// Reports an unrecoverable internal error and aborts. Used for invariant
/// violations that must be visible even in release builds.
[[noreturn]] void reportFatalError(const std::string &Message);

/// printf-style formatting into a std::string.
std::string formatString(const char *Fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// Integer ceiling division; the tile-count helper used everywhere the paper
/// writes `tl.cdiv`.
inline int64_t ceilDiv(int64_t A, int64_t B) {
  assert(B > 0 && "ceilDiv by non-positive divisor");
  return (A + B - 1) / B;
}

/// Rounds \p Value up to the next multiple of \p Align.
inline int64_t alignTo(int64_t Value, int64_t Align) {
  return ceilDiv(Value, Align) * Align;
}

/// FNV-1a 64-bit hash — the one hash used for program-cache keys, cache
/// file names, and serialized-blob checksums (sim/Bytecode.cpp,
/// support/ProgramCache.cpp); keep a single definition so file naming and
/// checksumming can never diverge.
inline uint64_t fnv1a64(const void *Data, size_t N,
                        uint64_t H = 1469598103934665603ull) {
  const unsigned char *P = static_cast<const unsigned char *>(Data);
  for (size_t I = 0; I < N; ++I) {
    H ^= P[I];
    H *= 1099511628211ull;
  }
  return H;
}
inline uint64_t fnv1a64(const std::string &S) {
  return fnv1a64(S.data(), S.size());
}

} // namespace tawa

#endif // TAWA_SUPPORT_SUPPORT_H
