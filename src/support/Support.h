//===- Support.h - Small shared utilities -----------------------*- C++ -*-===//
//
// Formatting, fatal-error reporting, and tiny ADT helpers used across the
// Tawa reproduction. Kept deliberately small; prefer the standard library.
//
//===----------------------------------------------------------------------===//

#ifndef TAWA_SUPPORT_SUPPORT_H
#define TAWA_SUPPORT_SUPPORT_H

#include <cassert>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>

namespace tawa {

/// Reports an unrecoverable internal error and aborts. Used for invariant
/// violations that must be visible even in release builds.
[[noreturn]] void reportFatalError(const std::string &Message);

/// printf-style formatting into a std::string.
std::string formatString(const char *Fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// Integer ceiling division; the tile-count helper used everywhere the paper
/// writes `tl.cdiv`.
inline int64_t ceilDiv(int64_t A, int64_t B) {
  assert(B > 0 && "ceilDiv by non-positive divisor");
  return (A + B - 1) / B;
}

/// Rounds \p Value up to the next multiple of \p Align.
inline int64_t alignTo(int64_t Value, int64_t Align) {
  return ceilDiv(Value, Align) * Align;
}

} // namespace tawa

#endif // TAWA_SUPPORT_SUPPORT_H
