//===- ProgramCache.h - Process-wide compiled-program cache -----*- C++ -*-===//
//
// The promotion of the historical per-Runner getOrCompile map into one
// process-wide cache of compiled kernels, bounded by an entry-count and
// byte LRU and optionally persisted to disk:
//
//   * every Runner in the process shares entries, so a bench harness that
//     constructs a Runner per sweep point still compiles each distinct
//     kernel once per process;
//   * with a persist directory configured (the TAWA_CACHE_DIR environment
//     variable, or setPersistDir), a miss first tries to load the
//     serialized CompiledProgram from disk (Bytecode.h's versioned binary
//     format), so repeated process launches skip lowering and the pass
//     pipeline entirely; any defect — truncation, corruption, a format or
//     machine-config mismatch — silently falls back to recompilation;
//   * entries are immutable once inserted and handed out as shared_ptrs,
//     so eviction never invalidates a live user.
//
// Keys are caller-provided strings covering every compile-time knob
// (kernel family, tile shape, precision, pipeline options); the cache
// appends a digest of the machine config, so two GpuConfigs never alias.
// See docs/program-cache.md for the key schema and on-disk format.
//
//===----------------------------------------------------------------------===//

#ifndef TAWA_SUPPORT_PROGRAMCACHE_H
#define TAWA_SUPPORT_PROGRAMCACHE_H

#include <cstddef>
#include <functional>
#include <memory>
#include <string>

namespace tawa {

class IrContext;
class Module;

namespace sim {
struct GpuConfig;
namespace bc {
struct CompiledProgram;
}
} // namespace sim

class ProgramCache {
public:
  /// One cached kernel. Ctx/M are null for disk-loaded entries (the
  /// CompiledProgram is self-contained); Prog is null only for entries
  /// compiled on behalf of the legacy tree-walking engine. Entries are
  /// IMMUTABLE once inserted: when a bytecode caller needs a program a
  /// legacy compile did not flatten, the cache builds a replacement entry
  /// sharing Ctx/M (hence shared_ptr) rather than mutating one that other
  /// threads may be reading.
  struct Entry {
    Entry();
    ~Entry();
    std::shared_ptr<IrContext> Ctx; ///< Destroyed after M (declared first).
    std::shared_ptr<Module> M;
    std::shared_ptr<const sim::bc::CompiledProgram> Prog;
  };
  using EntryRef = std::shared_ptr<Entry>;

  /// How a getOrCompile request was satisfied (drives the Runner's
  /// hit/miss accounting and the bench counters).
  enum class Outcome { MemoryHit, DiskHit, Compiled, Failed };

  struct Stats {
    size_t MemoryHits = 0;
    size_t DiskHits = 0;  ///< Deserialized from the persist dir.
    size_t Compiles = 0;  ///< Full lowering + pass pipeline runs.
    size_t Evictions = 0; ///< LRU evictions (entry or byte bound).
    size_t Entries = 0;   ///< Current resident entries.
    size_t Bytes = 0;     ///< Current resident program bytes (estimate).
    /// Cache files that existed but could not be used (IO error,
    /// truncation, corruption, version/config mismatch). Each one silently
    /// degraded to a recompile (ErrorKind::CacheIo / CorruptProgram never
    /// surface as run failures by design); the counter is how tests and
    /// harnesses observe that the failure path actually ran.
    size_t DiskReadFailures = 0;
    /// Entries that failed to land on disk (write/close/rename failure);
    /// a later process recompiles instead of disk-hitting.
    size_t DiskWriteFailures = 0;
  };

  /// The process-wide cache. Created on first use; reads TAWA_CACHE_DIR
  /// once at creation.
  static ProgramCache &shared();

  /// Returns the cached entry for \p Key (+ the config digest), trying in
  /// order: the in-memory map, the persist directory (unless \p NeedModule
  /// — the legacy engine needs IR, which disk entries do not carry), and
  /// finally \p Compile. \p Compile returns a fresh entry or null with
  /// \p Err set; failed compiles are never cached. \p NeedProgram makes
  /// the returned entry carry a CompiledProgram; a legacy-compiled
  /// resident entry is flattened into a replacement entry (sharing its
  /// module) that supersedes it in the map. \p Fuse controls the peephole
  /// pass of that lazy flatten — callers fold it into \p Key as well, so
  /// fused and unfused programs never alias an entry.
  ///
  /// Thread-safe; \p Compile and the lazy flatten run outside the cache
  /// lock (two threads racing the same key may both compile — last one
  /// wins, both get valid entries).
  EntryRef getOrCompile(const std::string &Key,
                        const sim::GpuConfig &Config, bool NeedModule,
                        bool NeedProgram, bool Fuse,
                        const std::function<EntryRef(std::string &Err)>
                            &Compile,
                        std::string &Err, Outcome *Out = nullptr);

  /// Drops every in-memory entry (live EntryRefs stay valid). The persist
  /// directory is untouched — this is exactly a simulated process restart,
  /// which is how the bench measures cross-process warm starts.
  void clear();

  /// LRU bounds. Exceeding either evicts least-recently-used entries
  /// (never the one just inserted). Defaults: 256 entries, 256 MiB.
  void setMaxEntries(size_t N);
  void setMaxBytes(size_t N);

  /// Overrides the persist directory ("" disables persistence). Created on
  /// first write if missing.
  void setPersistDir(std::string Dir);
  std::string getPersistDir() const;

  Stats getStats() const;
  void resetStats();

  ProgramCache(const ProgramCache &) = delete;
  ProgramCache &operator=(const ProgramCache &) = delete;

private:
  ProgramCache();
  ~ProgramCache();

  struct Impl;
  std::unique_ptr<Impl> Pimpl;
};

} // namespace tawa

#endif // TAWA_SUPPORT_PROGRAMCACHE_H
