//===- Subprocess.cpp - fork/exec child-process primitive -----------------===//

#include "support/Subprocess.h"

#include "support/Support.h"

#include <cerrno>
#include <csignal>
#include <cstdlib>
#include <cstring>

#include <fcntl.h>
#include <sys/resource.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

extern char **environ;

using namespace tawa;

std::string Subprocess::ExitStatus::describe() const {
  if (Running)
    return "running";
  if (Signaled)
    return formatString("signal %d (%s)", Sig, signalName(Sig));
  return formatString("exit code %d", Code);
}

const char *Subprocess::signalName(int Sig) {
  switch (Sig) {
  case SIGKILL:
    return "SIGKILL";
  case SIGSEGV:
    return "SIGSEGV";
  case SIGABRT:
    return "SIGABRT";
  case SIGBUS:
    return "SIGBUS";
  case SIGILL:
    return "SIGILL";
  case SIGFPE:
    return "SIGFPE";
  case SIGTERM:
    return "SIGTERM";
  case SIGXCPU:
    return "SIGXCPU";
  default:
    return "signal";
  }
}

std::unique_ptr<Subprocess> Subprocess::spawn(const Options &Opts,
                                              std::string &Err) {
  if (Opts.Argv.empty()) {
    Err = "empty argv";
    return nullptr;
  }

  // Channel[0] stays in the parent; Channel[1] becomes the child's
  // stdin+stdout. SOCK_STREAM (not a pipe pair) so the parent can send
  // with MSG_NOSIGNAL — a request written to an already-dead child is an
  // EPIPE errno, never a SIGPIPE.
  int Ch[2];
  if (::socketpair(AF_UNIX, SOCK_STREAM, 0, Ch) < 0) {
    Err = formatString("socketpair: %s", std::strerror(errno));
    return nullptr;
  }
  // Exec-status pipe: CLOEXEC on both ends, so a successful exec closes it
  // (parent reads EOF) while a failed exec writes the errno through it.
  int St[2];
  if (::pipe2(St, O_CLOEXEC) < 0) {
    Err = formatString("pipe2: %s", std::strerror(errno));
    ::close(Ch[0]);
    ::close(Ch[1]);
    return nullptr;
  }

  std::vector<char *> Argv;
  for (const std::string &A : Opts.Argv)
    Argv.push_back(const_cast<char *>(A.c_str()));
  Argv.push_back(nullptr);

  std::vector<std::string> EnvStore;
  std::vector<char *> Envp;
  for (char **E = environ; *E; ++E) {
    const char *Eq = std::strchr(*E, '=');
    size_t NameLen = Eq ? static_cast<size_t>(Eq - *E) : std::strlen(*E);
    bool Overridden = false;
    for (const auto &KV : Opts.ExtraEnv)
      if (KV.first.size() == NameLen &&
          std::memcmp(KV.first.data(), *E, NameLen) == 0) {
        Overridden = true;
        break;
      }
    if (!Overridden)
      Envp.push_back(*E);
  }
  for (const auto &KV : Opts.ExtraEnv)
    EnvStore.push_back(KV.first + "=" + KV.second);
  for (std::string &S : EnvStore)
    Envp.push_back(const_cast<char *>(S.c_str()));
  Envp.push_back(nullptr);

  int Pid = ::fork();
  if (Pid < 0) {
    Err = formatString("fork: %s", std::strerror(errno));
    ::close(Ch[0]);
    ::close(Ch[1]);
    ::close(St[0]);
    ::close(St[1]);
    return nullptr;
  }

  if (Pid == 0) {
    // Child: only async-signal-safe calls between fork and exec.
    ::close(Ch[0]);
    ::close(St[0]);
    if (::dup2(Ch[1], 0) < 0 || ::dup2(Ch[1], 1) < 0)
      ::_exit(127);
    ::close(Ch[1]);
    if (Opts.RlimitAsMb > 0) {
      rlimit R;
      R.rlim_cur = R.rlim_max =
          static_cast<rlim_t>(Opts.RlimitAsMb) * 1024 * 1024;
      ::setrlimit(RLIMIT_AS, &R);
    }
    if (Opts.RlimitCpuSec > 0) {
      rlimit R;
      R.rlim_cur = R.rlim_max = static_cast<rlim_t>(Opts.RlimitCpuSec);
      ::setrlimit(RLIMIT_CPU, &R);
    }
    ::execve(Argv[0], Argv.data(), Envp.data());
    int E = errno;
    (void)!::write(St[1], &E, sizeof(E));
    ::_exit(127);
  }

  // Parent.
  ::close(Ch[1]);
  ::close(St[1]);
  int ExecErrno = 0;
  ssize_t N;
  while ((N = ::read(St[0], &ExecErrno, sizeof(ExecErrno))) < 0 &&
         errno == EINTR) {
  }
  ::close(St[0]);
  if (N > 0) {
    // exec failed; reap the _exit(127) child.
    int WS;
    while (::waitpid(Pid, &WS, 0) < 0 && errno == EINTR) {
    }
    ::close(Ch[0]);
    Err = formatString("exec %s: %s", Opts.Argv[0].c_str(),
                       std::strerror(ExecErrno));
    return nullptr;
  }

  auto P = std::unique_ptr<Subprocess>(new Subprocess());
  P->Pid = Pid;
  P->Channel = Ch[0];
  return P;
}

Subprocess::~Subprocess() {
  if (!Reaped) {
    kill(SIGKILL);
    wait();
  }
  if (Channel >= 0)
    ::close(Channel);
}

Subprocess::ExitStatus Subprocess::poll() {
  if (Reaped)
    return Last;
  int WS;
  int R = ::waitpid(Pid, &WS, WNOHANG);
  if (R == 0)
    return Last; // Still running.
  Reaped = true;
  Last.Running = false;
  if (R < 0) {
    // Reaped elsewhere (should not happen); classify as a plain exit.
    Last.Signaled = false;
    Last.Code = -1;
    return Last;
  }
  if (WIFSIGNALED(WS)) {
    Last.Signaled = true;
    Last.Sig = WTERMSIG(WS);
  } else {
    Last.Signaled = false;
    Last.Code = WIFEXITED(WS) ? WEXITSTATUS(WS) : -1;
  }
  return Last;
}

Subprocess::ExitStatus Subprocess::wait() {
  if (Reaped)
    return Last;
  int WS;
  int R;
  while ((R = ::waitpid(Pid, &WS, 0)) < 0 && errno == EINTR) {
  }
  Reaped = true;
  Last.Running = false;
  if (R < 0) {
    Last.Signaled = false;
    Last.Code = -1;
    return Last;
  }
  if (WIFSIGNALED(WS)) {
    Last.Signaled = true;
    Last.Sig = WTERMSIG(WS);
  } else {
    Last.Signaled = false;
    Last.Code = WIFEXITED(WS) ? WEXITSTATUS(WS) : -1;
  }
  return Last;
}

void Subprocess::kill(int Sig) {
  if (!Reaped && Pid > 0)
    ::kill(Pid, Sig);
}
