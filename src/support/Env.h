//===- Env.h - TAWA_* environment-knob parsing ------------------*- C++ -*-===//
//
// One home for the ad-hoc getenv parsing that had grown across the tree
// (TAWA_TRACE, TAWA_NO_FUSE, TAWA_BC_PROFILE, TAWA_CACHE_DIR, and the
// watchdog/fault knobs added with them). Two properties every knob now
// shares:
//
//   * uniform flag semantics: "0" / "false" / "off" / "no" / "" mean OFF,
//     "1" / "true" / "on" / "yes" mean ON (historically a knob was "on"
//     merely by being set, so TAWA_NO_FUSE=0 silently disabled fusion);
//   * malformed values WARN once to stderr instead of being silently
//     ignored — a mistyped TAWA_MAX_STEPS=10k no longer turns the watchdog
//     off without a trace.
//
// Warnings are once-per-(variable, value) for the process, so hot callers
// (per-CTA executors) can re-read knobs without log spam.
//
//===----------------------------------------------------------------------===//

#ifndef TAWA_SUPPORT_ENV_H
#define TAWA_SUPPORT_ENV_H

#include <cstdint>
#include <string>

namespace tawa {

/// Boolean knob. Unset -> \p Default. Recognized values (case-insensitive):
/// "1"/"true"/"on"/"yes" -> true, "0"/"false"/"off"/"no"/"" -> false.
/// Anything else warns once and counts as true (the variable was
/// deliberately set).
bool envFlag(const char *Name, bool Default = false);

/// Integer knob. Unset -> \p Default; a value that does not parse as a
/// full signed decimal integer warns once and returns \p Default.
int64_t envInt64(const char *Name, int64_t Default);

/// String knob. Unset -> \p Default (no validation to do).
std::string envString(const char *Name, const std::string &Default = "");

/// Emits "tawa: warning: ..." to stderr at most once per \p Key for the
/// process. Exposed for parsers of structured knobs (TAWA_FAULTS) that do
/// their own validation but want the same warn-once discipline.
void envWarnOnce(const std::string &Key, const std::string &Message);

} // namespace tawa

#endif // TAWA_SUPPORT_ENV_H
