//===- ProgramCache.cpp - Process-wide compiled-program cache -----------------//

#include "support/ProgramCache.h"

#include "ir/Ir.h"
#include "sim/Bytecode.h"
#include "support/Env.h"
#include "support/FaultInject.h"
#include "support/Support.h"

#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <list>
#include <mutex>
#include <unordered_map>

#include <unistd.h>

using namespace tawa;
using namespace tawa::sim;

ProgramCache::Entry::Entry() = default;
ProgramCache::Entry::~Entry() = default;

namespace {

/// Resident-size estimate of one compiled program: the instruction streams
/// and pools dominate; the fixed struct overhead is folded into a constant.
/// Entries that also pin an IR module get a flat surcharge — the IR is a
/// small multiple of the instruction count and not worth walking exactly.
size_t programBytes(const bc::CompiledProgram *P, bool HasModule) {
  size_t N = 4096 + (HasModule ? 64 * 1024 : 0);
  if (!P)
    return N;
  auto Region = [](const bc::RegionProgram &RP) {
    return RP.Code.size() * sizeof(bc::Inst);
  };
  N += Region(P->Preamble);
  for (const bc::RegionProgram &RP : P->Agents)
    N += Region(RP);
  N += P->OperandSlots.size() * sizeof(int32_t);
  N += P->SlotOffsets.size() * sizeof(int64_t);
  N += P->Loops.size() * sizeof(bc::LoopInfo);
  for (const std::vector<int64_t> &V : P->IntVecs)
    N += V.size() * sizeof(int64_t);
  for (const std::string &S : P->Messages)
    N += S.size();
  return N;
}

} // namespace

struct ProgramCache::Impl {
  struct Resident {
    EntryRef E;
    size_t Bytes = 0;
    std::list<std::string>::iterator LruIt; ///< Position in Lru.
  };

  mutable std::mutex Mu;
  std::unordered_map<std::string, Resident> Map;
  std::list<std::string> Lru; ///< Front = most recently used.
  size_t MaxEntries = 256;
  size_t MaxBytes = 256ull << 20;
  size_t CurBytes = 0;
  std::string PersistDir;
  Stats St;

  /// Full map key: the caller key plus the machine-config digest.
  static std::string fullKey(const std::string &Key,
                             const GpuConfig &Config) {
    return Key + formatString("|cfg%016llx",
                              static_cast<unsigned long long>(
                                  bc::configDigest(Config)));
  }

  /// Cache-file path for a key (the file name hashes the full key and
  /// carries the format version, so version bumps and config changes
  /// never read stale bytes).
  static std::string filePath(const std::string &Dir,
                              const std::string &FullKey) {
    return Dir +
           formatString("/tawa-%016llx-v%u.tbc",
                        static_cast<unsigned long long>(fnv1a64(FullKey)),
                        bc::SerialFormatVersion);
  }

  void touch(Resident &R, const std::string &FullKey) {
    Lru.erase(R.LruIt);
    Lru.push_front(FullKey);
    R.LruIt = Lru.begin();
  }

  /// Inserts (or replaces) and evicts LRU entries beyond the bounds —
  /// never the entry just inserted; live EntryRefs keep evicted entries
  /// alive on the caller side.
  void insert(const std::string &FullKey, EntryRef E) {
    if (auto It = Map.find(FullKey); It != Map.end()) {
      CurBytes -= It->second.Bytes;
      Lru.erase(It->second.LruIt);
      Map.erase(It);
    }
    Resident R;
    R.Bytes = programBytes(E->Prog.get(), E->M != nullptr);
    R.E = std::move(E);
    Lru.push_front(FullKey);
    R.LruIt = Lru.begin();
    CurBytes += R.Bytes;
    Map.emplace(FullKey, std::move(R));
    while (Map.size() > 1 &&
           (Map.size() > MaxEntries || CurBytes > MaxBytes)) {
      const std::string &Victim = Lru.back();
      auto It = Map.find(Victim);
      CurBytes -= It->second.Bytes;
      Map.erase(It);
      Lru.pop_back();
      ++St.Evictions;
    }
  }

  /// Best-effort disk load; any defect returns null and the caller
  /// recompiles. \p Failed is set when a cache file EXISTED but could not
  /// be used (IO error, truncation, corruption, version/config mismatch) —
  /// a plain miss leaves it false. \p Dir is a snapshot taken under the
  /// lock (setPersistDir may race the slow path otherwise).
  static std::shared_ptr<const bc::CompiledProgram>
  loadFromDisk(const std::string &Dir, const std::string &FullKey,
               bool &Failed) {
    Failed = false;
    if (Dir.empty())
      return nullptr;
    std::ifstream In(filePath(Dir, FullKey), std::ios::binary);
    if (!In)
      return nullptr;
    // Fault site: a read-IO failure on an existing cache file.
    if (faults::enabled() &&
        faults::shouldFailNext(faults::Site::CacheRead)) {
      Failed = true;
      return nullptr;
    }
    std::string Bytes((std::istreambuf_iterator<char>(In)),
                      std::istreambuf_iterator<char>());
    if (!In.good() && !In.eof()) {
      Failed = true;
      return nullptr;
    }
    // Fault site: flip a byte so the serializer's real checksum-reject
    // path (not a simulated one) turns corruption into a recompile.
    if (faults::enabled() && !Bytes.empty() &&
        faults::shouldFailNext(faults::Site::Deserialize))
      Bytes[Bytes.size() / 2] ^= 0x5a;
    auto Prog = bc::deserializeProgram(Bytes);
    if (!Prog)
      Failed = true;
    return Prog;
  }

  /// Best-effort atomic disk write (tmp + rename): concurrent processes
  /// never observe a partial file, and IO failures are silently dropped —
  /// the cache is an accelerator, not a dependency. Returns false when the
  /// entry did not land on disk (the caller counts it; a later process
  /// simply recompiles). Write AND close results are checked before the
  /// rename — a partially flushed tmp must never be promoted to a cache
  /// file, even though the deserializer would reject it.
  static bool saveToDisk(const std::string &Dir, const std::string &FullKey,
                         const bc::CompiledProgram &P) {
    if (Dir.empty())
      return true;
    std::error_code Ec;
    std::filesystem::create_directories(Dir, Ec);
    std::string Path = filePath(Dir, FullKey);
    std::string Tmp =
        Path + formatString(".tmp.%lld",
                            static_cast<long long>(::getpid()));
    {
      std::ofstream Out(Tmp, std::ios::binary | std::ios::trunc);
      if (!Out)
        return false;
      std::string Bytes = bc::serializeProgram(P);
      Out.write(Bytes.data(), static_cast<std::streamsize>(Bytes.size()));
      // Fault site: a write-IO failure (ENOSPC-style) detected at close.
      if (faults::enabled() &&
          faults::shouldFailNext(faults::Site::CacheWrite))
        Out.setstate(std::ios::badbit);
      Out.close();
      if (Out.fail()) {
        std::filesystem::remove(Tmp, Ec);
        return false;
      }
    }
    std::filesystem::rename(Tmp, Path, Ec);
    if (Ec) {
      std::filesystem::remove(Tmp, Ec);
      return false;
    }
    return true;
  }

  /// Removes stale "tawa-*.tmp.*" files left behind by crashed writers.
  /// Only files older than an hour are swept — a live writer's tmp file is
  /// seconds old. Best-effort: every filesystem call tolerates errors
  /// (concurrent sweeps may race each other for the same file).
  static void sweepStaleTmpFiles(const std::string &Dir) {
    if (Dir.empty())
      return;
    std::error_code Ec;
    auto Now = std::filesystem::file_time_type::clock::now();
    std::filesystem::directory_iterator It(Dir, Ec), End;
    for (; !Ec && It != End; It.increment(Ec)) {
      std::string Name = It->path().filename().string();
      if (Name.rfind("tawa-", 0) != 0 ||
          Name.find(".tmp.") == std::string::npos)
        continue;
      std::error_code FileEc;
      auto Mtime = std::filesystem::last_write_time(It->path(), FileEc);
      if (FileEc || Now - Mtime < std::chrono::hours(1))
        continue;
      std::filesystem::remove(It->path(), FileEc);
    }
  }
};

ProgramCache::ProgramCache() : Pimpl(std::make_unique<Impl>()) {
  Pimpl->PersistDir = envString("TAWA_CACHE_DIR");
  // Cache open: reclaim tmp files a crashed writer left behind.
  Impl::sweepStaleTmpFiles(Pimpl->PersistDir);
}

ProgramCache::~ProgramCache() = default;

ProgramCache &ProgramCache::shared() {
  static ProgramCache Cache;
  return Cache;
}

ProgramCache::EntryRef ProgramCache::getOrCompile(
    const std::string &Key, const GpuConfig &Config, bool NeedModule,
    bool NeedProgram, bool Fuse,
    const std::function<EntryRef(std::string &Err)> &Compile,
    std::string &Err, Outcome *Out) {
  Impl &I = *Pimpl;
  std::string FullKey = Impl::fullKey(Key, Config);
  auto Report = [&](Outcome O) {
    if (Out)
      *Out = O;
  };

  std::string Dir;
  EntryRef NeedsFlatten;
  {
    std::lock_guard<std::mutex> L(I.Mu);
    Dir = I.PersistDir;
    auto It = I.Map.find(FullKey);
    // A disk-loaded entry carries no IR module, so it cannot serve the
    // legacy engine; fall through and recompile (the fresh entry, with
    // both module and program, then replaces it).
    if (It != I.Map.end() && !(NeedModule && !It->second.E->M)) {
      EntryRef E = It->second.E;
      I.touch(It->second, FullKey);
      ++I.St.MemoryHits;
      if (!(NeedProgram && !E->Prog && E->M)) {
        Report(Outcome::MemoryHit);
        return E;
      }
      NeedsFlatten = E; // Legacy-compiled entry: flatten outside the lock.
    }
  }

  // A bytecode caller hit an entry a legacy compile left unflattened.
  // Entries are immutable (other threads read them unlocked), so build a
  // replacement sharing the module and supersede the old one in the map;
  // the insert re-accounts the entry's bytes with the program included.
  if (NeedsFlatten) {
    auto E = std::make_shared<Entry>();
    E->Ctx = NeedsFlatten->Ctx;
    E->M = NeedsFlatten->M;
    E->Prog = bc::compileModule(*E->M, Config, Fuse);
    bool Saved = true;
    if (E->Prog && E->Prog->CompileError.empty())
      Saved = Impl::saveToDisk(Dir, FullKey, *E->Prog);
    std::lock_guard<std::mutex> L(I.Mu);
    if (!Saved)
      ++I.St.DiskWriteFailures;
    I.insert(FullKey, E);
    Report(Outcome::MemoryHit);
    return E;
  }

  // Disk, then compile — both outside the lock (slow).
  if (!NeedModule) {
    bool ReadFailed = false;
    auto Prog = Impl::loadFromDisk(Dir, FullKey, ReadFailed);
    if (Prog) {
      auto E = std::make_shared<Entry>();
      E->Prog = std::move(Prog);
      std::lock_guard<std::mutex> L(I.Mu);
      ++I.St.DiskHits;
      I.insert(FullKey, E);
      Report(Outcome::DiskHit);
      return E;
    }
    if (ReadFailed) {
      // A cache file existed but was unusable (IO error / corruption):
      // count it and fall through to a silent recompile — any defect in
      // the disk layer degrades to a compile, never to a failure.
      std::lock_guard<std::mutex> L(I.Mu);
      ++I.St.DiskReadFailures;
    }
  }

  EntryRef E = Compile(Err);
  if (!E) {
    Report(Outcome::Failed);
    return nullptr;
  }
  bool Saved = true;
  if (E->Prog && E->Prog->CompileError.empty())
    Saved = Impl::saveToDisk(Dir, FullKey, *E->Prog);
  std::lock_guard<std::mutex> L(I.Mu);
  if (!Saved)
    ++I.St.DiskWriteFailures;
  ++I.St.Compiles;
  I.insert(FullKey, E);
  Report(Outcome::Compiled);
  return E;
}

void ProgramCache::clear() {
  std::lock_guard<std::mutex> L(Pimpl->Mu);
  Pimpl->Map.clear();
  Pimpl->Lru.clear();
  Pimpl->CurBytes = 0;
}

void ProgramCache::setMaxEntries(size_t N) {
  std::lock_guard<std::mutex> L(Pimpl->Mu);
  Pimpl->MaxEntries = N;
}

void ProgramCache::setMaxBytes(size_t N) {
  std::lock_guard<std::mutex> L(Pimpl->Mu);
  Pimpl->MaxBytes = N;
}

void ProgramCache::setPersistDir(std::string Dir) {
  {
    std::lock_guard<std::mutex> L(Pimpl->Mu);
    Pimpl->PersistDir = Dir;
  }
  Impl::sweepStaleTmpFiles(Dir);
}

std::string ProgramCache::getPersistDir() const {
  std::lock_guard<std::mutex> L(Pimpl->Mu);
  return Pimpl->PersistDir;
}

ProgramCache::Stats ProgramCache::getStats() const {
  std::lock_guard<std::mutex> L(Pimpl->Mu);
  Stats S = Pimpl->St;
  S.Entries = Pimpl->Map.size();
  S.Bytes = Pimpl->CurBytes;
  return S;
}

void ProgramCache::resetStats() {
  std::lock_guard<std::mutex> L(Pimpl->Mu);
  Pimpl->St = Stats();
}
