//===- Json.h - Deterministic JSON writer + strict reader -------*- C++ -*-===//
//
// The reporting layer's JSON emitter: append-only, two-space pretty
// printing, automatic comma/indent bookkeeping, and *deterministic*
// formatting (fixed decimal counts for doubles, stable field order is the
// caller's). Determinism is load-bearing: scripts/check.sh diffs the JSON
// a cold-cache sweep writes against a warm-cache re-run and requires the
// per-point sections to be byte-identical.
//
// The reader half (JsonValue / parseJson) exists for the serving layer
// (docs/serving.md): tawa-serve requests arrive as JSON over a socket from
// untrusted clients, so parsing is STRICT — exactly one top-level value,
// no trailing content, no trailing commas, full escape validation
// (including surrogate pairs), and a nesting-depth cap so a poisoned
// request cannot blow the stack. Every rejection reports the byte offset
// it occurred at. Object key order is preserved on parse, so a
// parse → writeTo round trip of writer output is byte-identical (the
// json_test round-trip suite pins this against JsonWriter).
//
//===----------------------------------------------------------------------===//

#ifndef TAWA_SUPPORT_JSON_H
#define TAWA_SUPPORT_JSON_H

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace tawa {

class JsonWriter {
public:
  JsonWriter &beginObject();
  JsonWriter &endObject();
  JsonWriter &beginArray();
  JsonWriter &endArray();

  /// Starts a key inside the current object; follow with a value or a
  /// begin{Object,Array}.
  JsonWriter &key(const std::string &K);

  JsonWriter &value(const std::string &S);
  JsonWriter &value(const char *S);
  JsonWriter &value(bool B);
  JsonWriter &value(int64_t N);
  JsonWriter &value(uint64_t N);
  /// Fixed-decimal rendering; non-finite values emit null (JSON has no
  /// NaN/Inf).
  JsonWriter &value(double V, int Decimals = 6);

  JsonWriter &field(const std::string &K, const std::string &S);
  JsonWriter &field(const std::string &K, const char *S);
  JsonWriter &field(const std::string &K, bool B);
  JsonWriter &field(const std::string &K, int64_t N);
  JsonWriter &field(const std::string &K, uint64_t N);
  JsonWriter &field(const std::string &K, double V, int Decimals = 6);

  /// The finished document (call after the outermost endObject/endArray);
  /// ends with a newline.
  std::string str() const;

  static std::string escape(const std::string &S);

private:
  /// Comma/newline/indent before a value or key at the current nesting.
  void prepare();

  std::string Out;
  /// One char per open container: 'O' = object, 'A' = array.
  std::string Stack;
  /// Whether the current container already holds an element.
  std::string HasElem;
  bool PendingKey = false;
};

//===----------------------------------------------------------------------===//
// Reader
//===----------------------------------------------------------------------===//

/// A parsed JSON document node. Integers that fit int64 parse as Int
/// (asInt64); everything else numeric parses as Double. Object members
/// keep their textual order (duplicate keys are kept; find returns the
/// first), so writer output survives a parse → writeTo round trip
/// byte-for-byte.
class JsonValue {
public:
  enum class Kind { Null, Bool, Int, Double, String, Array, Object };
  using Member = std::pair<std::string, JsonValue>;

  JsonValue() = default;
  static JsonValue makeBool(bool B);
  static JsonValue makeInt(int64_t N);
  static JsonValue makeDouble(double D);
  static JsonValue makeString(std::string S);
  static JsonValue makeArray();
  static JsonValue makeObject();

  Kind kind() const { return K; }
  bool isNull() const { return K == Kind::Null; }
  bool isBool() const { return K == Kind::Bool; }
  /// Int or Double.
  bool isNumber() const { return K == Kind::Int || K == Kind::Double; }
  bool isString() const { return K == Kind::String; }
  bool isArray() const { return K == Kind::Array; }
  bool isObject() const { return K == Kind::Object; }

  bool asBool() const { return B; }
  /// Int value; a Double is truncated toward zero.
  int64_t asInt64() const;
  double asDouble() const;
  const std::string &asString() const { return S; }

  std::vector<JsonValue> &elements() { return Arr; }
  const std::vector<JsonValue> &elements() const { return Arr; }
  std::vector<Member> &members() { return Obj; }
  const std::vector<Member> &members() const { return Obj; }

  /// First member named \p Key, or null when absent / not an object.
  const JsonValue *find(const std::string &Key) const;

  /// Typed field helpers for request decoding: return \p Default when the
  /// member is absent, and set \p TypeErr (when non-null) to the member
  /// name when it is present with the wrong type — callers reject rather
  /// than silently defaulting a malformed field.
  int64_t getInt(const std::string &Key, int64_t Default,
                 std::string *TypeErr = nullptr) const;
  bool getBool(const std::string &Key, bool Default,
               std::string *TypeErr = nullptr) const;
  std::string getString(const std::string &Key, const std::string &Default,
                        std::string *TypeErr = nullptr) const;

  /// Re-emits this value through \p W (doubles at \p Decimals; keys in
  /// stored order). With writer-produced input this reproduces the
  /// original document exactly.
  void writeTo(JsonWriter &W, int Decimals = 6) const;

private:
  Kind K = Kind::Null;
  bool B = false;
  int64_t I = 0;
  double D = 0;
  std::string S;
  std::vector<JsonValue> Arr;
  std::vector<Member> Obj;
};

/// Maximum container nesting parseJson accepts; deeper input is rejected
/// with a byte-offset error (guards recursive descent against adversarial
/// requests).
constexpr int JsonMaxDepth = 128;

/// Strictly parses \p Text as exactly one JSON document (any trailing
/// non-whitespace is an error). Returns true on success; on failure \p Err
/// is "byte N: <reason>" where N is the 0-based offset of the offending
/// byte.
bool parseJson(const std::string &Text, JsonValue &Out, std::string &Err);

} // namespace tawa

#endif // TAWA_SUPPORT_JSON_H
