//===- Json.h - Minimal deterministic JSON writer ---------------*- C++ -*-===//
//
// The reporting layer's JSON emitter: append-only, two-space pretty
// printing, automatic comma/indent bookkeeping, and *deterministic*
// formatting (fixed decimal counts for doubles, stable field order is the
// caller's). Determinism is load-bearing: scripts/check.sh diffs the JSON
// a cold-cache sweep writes against a warm-cache re-run and requires the
// per-point sections to be byte-identical.
//
// This is a writer only — the repo never parses JSON, it only emits it for
// CI tracking and figure post-processing.
//
//===----------------------------------------------------------------------===//

#ifndef TAWA_SUPPORT_JSON_H
#define TAWA_SUPPORT_JSON_H

#include <cstdint>
#include <string>

namespace tawa {

class JsonWriter {
public:
  JsonWriter &beginObject();
  JsonWriter &endObject();
  JsonWriter &beginArray();
  JsonWriter &endArray();

  /// Starts a key inside the current object; follow with a value or a
  /// begin{Object,Array}.
  JsonWriter &key(const std::string &K);

  JsonWriter &value(const std::string &S);
  JsonWriter &value(const char *S);
  JsonWriter &value(bool B);
  JsonWriter &value(int64_t N);
  JsonWriter &value(uint64_t N);
  /// Fixed-decimal rendering; non-finite values emit null (JSON has no
  /// NaN/Inf).
  JsonWriter &value(double V, int Decimals = 6);

  JsonWriter &field(const std::string &K, const std::string &S);
  JsonWriter &field(const std::string &K, const char *S);
  JsonWriter &field(const std::string &K, bool B);
  JsonWriter &field(const std::string &K, int64_t N);
  JsonWriter &field(const std::string &K, uint64_t N);
  JsonWriter &field(const std::string &K, double V, int Decimals = 6);

  /// The finished document (call after the outermost endObject/endArray);
  /// ends with a newline.
  std::string str() const;

  static std::string escape(const std::string &S);

private:
  /// Comma/newline/indent before a value or key at the current nesting.
  void prepare();

  std::string Out;
  /// One char per open container: 'O' = object, 'A' = array.
  std::string Stack;
  /// Whether the current container already holds an element.
  std::string HasElem;
  bool PendingKey = false;
};

} // namespace tawa

#endif // TAWA_SUPPORT_JSON_H
