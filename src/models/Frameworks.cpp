//===- Frameworks.cpp - Evaluation baseline models ------------------------------//
//
// Envelope parameters and their provenance. Each factor is anchored either
// in public microarchitectural facts (register budgets, cp.async vs TMA) or
// in the paper's own relative measurements (§V-B..§V-D), so the reproduced
// figures inherit the paper's *shape* without copying its absolute numbers.
//
//===----------------------------------------------------------------------===//

#include "models/Frameworks.h"

using namespace tawa;

const char *tawa::getFrameworkName(Framework F) {
  switch (F) {
  case Framework::Peak:
    return "Theoretical Peak";
  case Framework::CuBlas:
    return "cuBLAS";
  case Framework::Tawa:
    return "Tawa";
  case Framework::Triton:
    return "Triton";
  case Framework::TritonNoPipe:
    return "Triton w/o pipelining";
  case Framework::TileLang:
    return "TileLang";
  case Framework::ThunderKittens:
    return "ThunderKittens";
  case Framework::FA3:
    return "FA3 (CUTLASS)";
  }
  return "<unknown>";
}

FrameworkEnvelope tawa::getGemmEnvelope(Framework F, const GemmWorkload &W) {
  FrameworkEnvelope E;
  bool Fp8 = W.Prec == Precision::FP8;
  switch (F) {
  case Framework::Peak:
    E.Analytic = true;
    E.AnalyticComputeEff = 1.0;
    E.AnalyticMemEff = 1.0;
    E.AnalyticOverheadMicros = 0.0;
    break;

  case Framework::CuBlas:
    // Closed-source library: near-roofline with a small launch overhead and
    // the highest sustained efficiency of all contenders (§V-B: "highly
    // optimized kernel library"). Slightly less FP8-tuned than FP16 in the
    // CUDA 12.7 era (the paper finds Tawa 1.06x ahead on FP8 average).
    E.Analytic = true;
    E.AnalyticComputeEff = Fp8 ? 0.74 : 0.82;
    E.AnalyticMemEff = 0.92;
    E.AnalyticOverheadMicros = 1.5;
    break;

  case Framework::Tawa: {
    // §V-A: D and P chosen manually per shape; large cooperative tiles with
    // persistence (the Fig. 12 best configuration).
    E.Options.EnableWarpSpecialization = true;
    E.Options.ArefDepth = 3;
    E.Options.MmaPipelineDepth = 2;
    E.Options.NumConsumerGroups = 2;
    E.Options.Persistent = true;
    E.TileM = 128;
    E.TileN = 256;
    E.TileK = 64;
    break;
  }

  case Framework::Triton:
    // Baseline Triton (§II-B): no warp roles; Ampere-style cp.async software
    // pipelining with depth 3 (the upstream default num_stages), 128x256
    // tiles on 8 warps. Copies consume CUDA-core issue slots and achieve a
    // lower fraction of HBM bandwidth than TMA — both modeled directly by
    // the simulator, not by a fudge factor.
    E.Options.EnableWarpSpecialization = false;
    E.SwPipelineDepth = 3;
    E.TileM = 128;
    E.TileN = 256;
    E.TileK = 64;
    // Ampere-style lowering misses the deepest WGMMA pipelining (§V-B).
    E.ComputeScale = 1.04;
    break;

  case Framework::TritonNoPipe:
    // Fig. 12 ablation base: same tiling, fully synchronous loads.
    E.Options.EnableWarpSpecialization = false;
    E.SwPipelineDepth = 0;
    E.TileM = 128;
    E.TileN = 128;
    E.TileK = 64;
    break;

  case Framework::TileLang:
    // TVM-based WS with implicitly scheduled pipelines (§II-B): depth-2
    // pipeline, no persistence, strong at large K (§V-B: beats Tawa when
    // K >= 8192 by up to ~5%), notably less tuned for FP8 (§V-B: up to
    // 1.59x behind at small K) and for small shapes (extra per-CTA
    // configuration cost).
    E.Options.EnableWarpSpecialization = true;
    E.Options.ArefDepth = 3;
    E.Options.MmaPipelineDepth = 2;
    E.Options.NumConsumerGroups = 2;
    E.Options.Persistent = false;
    E.TileM = 128;
    E.TileN = 256;
    E.TileK = 64;
    E.ComputeScale = Fp8 ? 1.22 : 0.95;
    E.ExtraCtaCycles = 2500;
    if (W.Batch > 1) {
      // §V-C: TileLang's batched kernels trail Tawa by up to 50%.
      E.ComputeScale *= 1.25;
      E.ExtraCtaCycles += 2000;
    }
    if (!W.GroupMs.empty()) {
      // Grouped GEMM degrades with group count (§V-C): per-group kernel
      // reconfiguration.
      E.ExtraLaunchMicros =
          4.0 * static_cast<double>(W.GroupMs.size());
      E.ComputeScale *= 1.0 + 0.05 * static_cast<double>(W.GroupMs.size());
    }
    break;

  case Framework::ThunderKittens:
    // CUDA C++ tile library (§II-B): hand-written WS kernels extensively
    // tuned for large-K FP16 (§V-B: ahead of Tawa when K >= 8192), with a
    // longer prologue and little FP8 tuning (§V-B: up to 1.61x behind at
    // small K).
    if (!W.GroupMs.empty() || W.Batch > 1 || W.SplitK > 1) {
      E.Supported = false; // §V-C: no functioning batched/grouped kernels
                           // (nor a split-K reduction variant).
      break;
    }
    E.Options.EnableWarpSpecialization = true;
    E.Options.ArefDepth = 4;
    E.Options.MmaPipelineDepth = 2;
    E.Options.NumConsumerGroups = 2;
    E.Options.Persistent = false;
    E.TileM = 128;
    E.TileN = 256;
    E.TileK = 64;
    E.ComputeScale = Fp8 ? 1.25 : 0.96;
    E.ExtraCtaCycles = 4000;
    break;

  case Framework::FA3:
    E.Supported = false; // Attention-only.
    break;
  }
  return E;
}

FrameworkEnvelope tawa::getAttentionEnvelope(Framework F,
                                             const AttentionWorkload &W) {
  FrameworkEnvelope E;
  bool Fp8 = W.Prec == Precision::FP8;
  // Attention MMAs run at reduced sustained efficiency on every framework:
  // N=128 WGMMA shapes and per-iteration accumulator rescaling leave the
  // tensor cores idle between stages (why FA3 sustains ~70% of peak).
  const double AttnMmaScale = 1.15;
  switch (F) {
  case Framework::Peak:
    E.Analytic = true;
    E.AnalyticComputeEff = 1.0;
    E.AnalyticMemEff = 1.0;
    E.AnalyticOverheadMicros = 0.0;
    break;

  case Framework::Tawa:
    // Coarse-grained T/C/U pipelining with cooperative consumers (§V-D).
    E.Options.EnableWarpSpecialization = true;
    E.Options.ArefDepth = 2;
    E.Options.CoarsePipeline = true;
    E.Options.NumConsumerGroups = 2;
    E.TileQ = 128;
    E.TileKv = 128;
    E.ComputeScale = AttnMmaScale;
    break;

  case Framework::Triton:
    // FlashAttention-2-style Triton (§V-D): software pipelining, no warp
    // specialization, so softmax and MMA serialize within each warp.
    E.Options.EnableWarpSpecialization = false;
    E.SwPipelineDepth = 2;
    E.TileQ = 128;
    E.TileKv = 128;
    E.ComputeScale = AttnMmaScale;
    break;

  case Framework::TritonNoPipe:
    E.Options.EnableWarpSpecialization = false;
    E.SwPipelineDepth = 0;
    E.TileQ = 128;
    E.TileKv = 128;
    E.ComputeScale = AttnMmaScale;
    break;

  case Framework::FA3:
    // Hand-optimized CUTLASS kernel: the same warp-specialized T/C/U
    // structure plus ping-pong scheduling between two consumer warp groups,
    // which hides the softmax of one group under the other's MMA slightly
    // better than Tawa's compiler-scheduled pipeline (§V-D: Tawa reaches
    // 96% of FA3 FP16, 89% FP8).
    E.Options.EnableWarpSpecialization = true;
    E.Options.ArefDepth = 2;
    E.Options.CoarsePipeline = true;
    E.Options.NumConsumerGroups = 2;
    E.TileQ = 128;
    E.TileKv = 128;
    E.ComputeScale = AttnMmaScale * (Fp8 ? 0.95 : 0.95);
    E.CudaScale = 0.80; // Two consumer groups alternate compute phases.
    break;

  case Framework::TileLang:
    // WS but with limited control over fine-grained MMA pipelines (§II-B);
    // behind Tawa at L >= 4K by ~1.10x FP16 and 1.48x FP8 (§V-D).
    E.Options.EnableWarpSpecialization = true;
    E.Options.ArefDepth = 2;
    E.Options.CoarsePipeline = true;
    E.Options.NumConsumerGroups = 2;
    E.TileQ = 128;
    E.TileKv = 128;
    E.ComputeScale = AttnMmaScale * (Fp8 ? 1.40 : 1.08);
    E.ExtraCtaCycles = 2000;
    break;

  case Framework::ThunderKittens:
    if (Fp8) {
      E.Supported = false; // §V-D: FP8 attention configurations fail.
      break;
    }
    E.Options.EnableWarpSpecialization = true;
    E.Options.ArefDepth = 2;
    E.Options.CoarsePipeline = true;
    E.Options.NumConsumerGroups = 2;
    E.TileQ = 128;
    E.TileKv = 128;
    E.ComputeScale = AttnMmaScale * 1.18;
    E.ExtraCtaCycles = 3000;
    break;

  case Framework::CuBlas:
    E.Supported = false; // GEMM-only library.
    break;
  }
  return E;
}
