//===- Frameworks.h - Evaluation baseline models ----------------*- C++ -*-===//
//
// The frameworks the paper compares against (§V-A). Two kinds of models:
//
//   * compiled models — run real IR through our compiler (or the Triton
//     software-pipelining mode) and simulate it. Tawa and the Triton
//     baselines are fully compiled; TileLang / ThunderKittens / FA3 are
//     *schedule envelopes*: the same compiled pipeline with per-framework
//     scheduling options plus documented tuning factors taken from the
//     paper's own relative measurements (we cannot rebuild those external
//     code bases — see DESIGN.md's substitution table);
//
//   * analytic models — cuBLAS (closed-source) and the theoretical peak are
//     closed-form rooflines with documented efficiencies.
//
//===----------------------------------------------------------------------===//

#ifndef TAWA_MODELS_FRAMEWORKS_H
#define TAWA_MODELS_FRAMEWORKS_H

#include "frontend/Kernels.h"
#include "passes/Passes.h"

#include <string>

namespace tawa {

enum class Framework {
  Peak,          ///< Theoretical tensor-core peak.
  CuBlas,        ///< Closed-source library (analytic roofline).
  Tawa,          ///< This paper's compiler.
  Triton,        ///< Baseline Triton: Ampere-style cp.async pipelining.
  TritonNoPipe,  ///< Ablation base: Triton with pipelining disabled.
  TileLang,      ///< TVM-based tile DSL with built-in WS (envelope model).
  ThunderKittens,///< CUDA tile library (envelope model).
  FA3,           ///< Hand-written CUTLASS FlashAttention-3 (envelope model).
};

const char *getFrameworkName(Framework F);

/// How a framework executes a workload on the shared simulator.
struct FrameworkEnvelope {
  /// False when the framework cannot run the configuration (e.g.
  /// ThunderKittens FP8 attention, §V-D).
  bool Supported = true;
  /// Closed-form roofline instead of compiled simulation.
  bool Analytic = false;

  //===--- Compiled-model knobs -------------------------------------------===//
  TawaOptions Options;         ///< Warp-specialization configuration.
  int64_t SwPipelineDepth = 0; ///< >0: Triton cp.async mode (no WS).
  int64_t TileM = 128, TileN = 256, TileK = 64;
  int64_t TileQ = 128, TileKv = 128;
  /// Multiplies tensor-core time: >1 = less tuned than Tawa, <1 = a
  /// hand-tuning edge.
  double ComputeScale = 1.0;
  /// Multiplies CUDA-core time (e.g. FA3's ping-pong scheduling hides one
  /// group's softmax under the other's MMA).
  double CudaScale = 1.0;
  /// Extra per-CTA overhead cycles (prologue/configuration costs).
  double ExtraCtaCycles = 0;
  /// Extra one-time overhead (e.g. per-group reconfiguration in grouped
  /// GEMM), microseconds.
  double ExtraLaunchMicros = 0;

  //===--- Analytic-model parameters --------------------------------------===//
  double AnalyticComputeEff = 0.85; ///< Fraction of TC peak sustained.
  double AnalyticMemEff = 0.90;     ///< Fraction of HBM peak sustained.
  double AnalyticOverheadMicros = 2.0;
};

//===----------------------------------------------------------------------===//
// Workloads
//===----------------------------------------------------------------------===//

struct GemmWorkload {
  int64_t M = 8192, N = 8192, K = 8192;
  int64_t Batch = 1;
  Precision Prec = Precision::FP16;
  /// Grouped GEMM (Fig. 9 right): per-group M values (empty = plain GEMM).
  std::vector<int64_t> GroupMs;
  /// Split-K factor: > 1 compiles the @matmul_splitk kernel and splits the
  /// K loop across that many CTAs (grid axis 1) with a cross-CTA atomic
  /// reduction into an f32 C. A pure LAUNCH parameter — every split factor
  /// shares one compile key. Requires Batch == 1.
  int64_t SplitK = 1;
  /// True compiles the @matmul_grouped (MoE) kernel: GroupMs become ragged
  /// per-expert batches dispatched through a group-offset table and a
  /// data-dependent CTA list (runCtaBatch), instead of the historical
  /// concatenated-GEMM envelope treatment (fig9 keeps MoE = false).
  bool MoE = false;

  int64_t totalM() const {
    if (GroupMs.empty())
      return M;
    int64_t Sum = 0;
    for (int64_t G : GroupMs)
      Sum += G;
    return Sum;
  }
  double flops() const {
    return 2.0 * static_cast<double>(totalM()) * N * K * Batch;
  }
};

struct AttentionWorkload {
  int64_t SeqLen = 4096;
  int64_t Batch = 4;
  int64_t Heads = 32;
  int64_t HeadDim = 128;
  bool Causal = false;
  Precision Prec = Precision::FP16;

  /// Attention FLOPs as the paper counts them (2 GEMMs; causal halves the
  /// useful work).
  double flops() const {
    double Full = 4.0 * static_cast<double>(SeqLen) * SeqLen * HeadDim *
                  Batch * Heads;
    return Causal ? Full / 2 : Full;
  }
};

/// Per-framework configuration for a GEMM point. The envelope parameters are
/// documented inline in Frameworks.cpp with their provenance.
FrameworkEnvelope getGemmEnvelope(Framework F, const GemmWorkload &W);

/// Per-framework configuration for an attention point.
FrameworkEnvelope getAttentionEnvelope(Framework F,
                                       const AttentionWorkload &W);

} // namespace tawa

#endif // TAWA_MODELS_FRAMEWORKS_H
