//===- Kernels.h - Tile-level kernel builders -------------------*- C++ -*-===//
//
// Programmatic construction of the annotation-free Triton-style tile kernels
// the paper compiles (Fig. 2b): GEMM (plain / batched), and FlashAttention-
// style multi-head attention (causal or not, FP16 or FP8). These produce
// *unspecialized* tile-dialect IR; the Tawa passes turn them into
// warp-specialized programs.
//
//===----------------------------------------------------------------------===//

#ifndef TAWA_FRONTEND_KERNELS_H
#define TAWA_FRONTEND_KERNELS_H

#include "ir/Builder.h"
#include "ir/Ir.h"

#include <memory>

namespace tawa {

/// Element precision of kernel inputs (accumulation is always FP32).
enum class Precision { FP16, FP8 };

/// Returns the scalar IR type for a precision.
Type *getInputType(IrContext &Ctx, Precision P);

/// Bytes per element of a precision.
inline int64_t getPrecisionBytes(Precision P) {
  return P == Precision::FP16 ? 2 : 1;
}

//===----------------------------------------------------------------------===//
// GEMM
//===----------------------------------------------------------------------===//

/// Static (compile-time) configuration of the GEMM kernel of Fig. 2b.
/// Runtime sizes M/N/K are kernel arguments.
struct GemmKernelConfig {
  int64_t TileM = 128;
  int64_t TileN = 128;
  int64_t TileK = 64;
  Precision InPrecision = Precision::FP16;
  /// Adds a leading batch grid axis (batched GEMM, Fig. 9 left).
  bool Batched = false;
  /// Uses the pointer-arithmetic epilogue of Fig. 2b L21-25 instead of a TMA
  /// store (exercises make_range / expand_dims / broadcast / addptr).
  bool PointerEpilogue = false;
};

/// Builds `@matmul(a_desc, b_desc, c_desc, M, N, K)` into a fresh module.
/// A is M*K row-major, B is N*K row-major (loaded [n, k] and contracted with
/// transB, matching `tl.dot(a, b.T)`), C is M*N.
std::unique_ptr<Module> buildGemmModule(IrContext &Ctx,
                                        const GemmKernelConfig &Config);

//===----------------------------------------------------------------------===//
// Multi-head attention
//===----------------------------------------------------------------------===//

/// Static configuration of the FlashAttention-style MHA kernel (§V-D).
struct AttentionKernelConfig {
  int64_t TileQ = 128;  ///< Query rows per CTA.
  int64_t TileKv = 128; ///< KV rows per inner iteration.
  int64_t HeadDim = 128;
  bool Causal = false;
  Precision InPrecision = Precision::FP16;
};

/// Builds `@mha(q_desc, k_desc, v_desc, o_desc, L)`; grid axis 0 walks query
/// tiles, axis 1 walks batch*heads. Q/K/V/O are (BH, L, HeadDim) row-major.
/// The loop body is the T -> C -> U structure Algorithm 1 schedules:
/// T = Q*K^T on tensor cores, C = online-softmax rescaling on CUDA cores,
/// U = P*V on tensor cores.
std::unique_ptr<Module> buildAttentionModule(IrContext &Ctx,
                                             const AttentionKernelConfig &C);

} // namespace tawa

#endif // TAWA_FRONTEND_KERNELS_H
