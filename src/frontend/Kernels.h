//===- Kernels.h - Tile-level kernel builders -------------------*- C++ -*-===//
//
// Programmatic construction of the annotation-free Triton-style tile kernels
// the paper compiles (Fig. 2b): GEMM (plain / batched), and FlashAttention-
// style multi-head attention (causal or not, FP16 or FP8). These produce
// *unspecialized* tile-dialect IR; the Tawa passes turn them into
// warp-specialized programs.
//
//===----------------------------------------------------------------------===//

#ifndef TAWA_FRONTEND_KERNELS_H
#define TAWA_FRONTEND_KERNELS_H

#include "ir/Builder.h"
#include "ir/Ir.h"

#include <memory>

namespace tawa {

/// Element precision of kernel inputs (accumulation is always FP32).
enum class Precision { FP16, FP8 };

/// Returns the scalar IR type for a precision.
Type *getInputType(IrContext &Ctx, Precision P);

/// Bytes per element of a precision.
inline int64_t getPrecisionBytes(Precision P) {
  return P == Precision::FP16 ? 2 : 1;
}

//===----------------------------------------------------------------------===//
// GEMM
//===----------------------------------------------------------------------===//

/// Static (compile-time) configuration of the GEMM kernel of Fig. 2b.
/// Runtime sizes M/N/K are kernel arguments.
struct GemmKernelConfig {
  int64_t TileM = 128;
  int64_t TileN = 128;
  int64_t TileK = 64;
  Precision InPrecision = Precision::FP16;
  /// Adds a leading batch grid axis (batched GEMM, Fig. 9 left).
  bool Batched = false;
  /// Uses the pointer-arithmetic epilogue of Fig. 2b L21-25 instead of a TMA
  /// store (exercises make_range / expand_dims / broadcast / addptr).
  bool PointerEpilogue = false;
  /// Selects buildSplitKGemmModule (cross-CTA reduction; split factor is a
  /// launch parameter). Mutually exclusive with Batched and Grouped.
  bool SplitK = false;
  /// Selects buildGroupedGemmModule (ragged MoE batches via a group-offset
  /// table). Mutually exclusive with Batched and SplitK.
  bool Grouped = false;
  /// Split-K only: replace the reduction epilogue's terminal atomic with an
  /// mbarrier wait that can never complete — a deterministic deadlock used
  /// to pin the tawa-diag-v1 post-mortem of a wedged cross-CTA reduction.
  bool DeadlockEpilogue = false;
};

/// Builds `@matmul(a_desc, b_desc, c_desc, M, N, K)` into a fresh module.
/// A is M*K row-major, B is N*K row-major (loaded [n, k] and contracted with
/// transB, matching `tl.dot(a, b.T)`), C is M*N.
std::unique_ptr<Module> buildGemmModule(IrContext &Ctx,
                                        const GemmKernelConfig &Config);

/// Builds `@matmul_splitk(a_desc, b_desc, c_desc, M, N, K)`: grid axis 0
/// walks output tiles exactly like @matmul; grid axis 1 splits the K loop
/// across CTAs (`num_programs(1)` IS the split factor, so every split factor
/// shares one compiled program). Each CTA contracts its contiguous slice of
/// K tiles and atomically accumulates the raw f32 partial sum into C — C
/// must be f32 and zero-initialized by the host. Honors Batched=false only.
std::unique_ptr<Module> buildSplitKGemmModule(IrContext &Ctx,
                                              const GemmKernelConfig &Config);

/// Builds `@matmul_grouped(a_desc, b_desc, c_desc, table_desc, N, K)`: the
/// grouped/MoE GEMM over ragged per-expert batches. A is (sum_M, K) row-major
/// holding every expert's rows concatenated; B is (E, N, K) — one weight
/// plane per expert; C is (sum_M, N). `table_desc` is an (E, 2) i32-valued
/// tensor of [row_start_e, m_size_e] rows, read with tt.load_scalar. Grid
/// axis 0 walks the (m tile, n tile) pairs of ONE expert (row-major,
/// n-major-inner derived from arg N); axis 1 is the expert id — the driver
/// launches a data-dependent ragged CTA list through runCtaBatch. Rows past
/// m_size_e are masked off in the store (partial tiles).
std::unique_ptr<Module> buildGroupedGemmModule(IrContext &Ctx,
                                               const GemmKernelConfig &Config);

//===----------------------------------------------------------------------===//
// Multi-head attention
//===----------------------------------------------------------------------===//

/// Static configuration of the FlashAttention-style MHA kernel (§V-D).
struct AttentionKernelConfig {
  int64_t TileQ = 128;  ///< Query rows per CTA.
  int64_t TileKv = 128; ///< KV rows per inner iteration.
  int64_t HeadDim = 128;
  bool Causal = false;
  Precision InPrecision = Precision::FP16;
};

/// Builds `@mha(q_desc, k_desc, v_desc, o_desc, L)`; grid axis 0 walks query
/// tiles, axis 1 walks batch*heads. Q/K/V/O are (BH, L, HeadDim) row-major.
/// The loop body is the T -> C -> U structure Algorithm 1 schedules:
/// T = Q*K^T on tensor cores, C = online-softmax rescaling on CUDA cores,
/// U = P*V on tensor cores.
std::unique_ptr<Module> buildAttentionModule(IrContext &Ctx,
                                             const AttentionKernelConfig &C);

} // namespace tawa

#endif // TAWA_FRONTEND_KERNELS_H
