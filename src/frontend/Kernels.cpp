//===- Kernels.cpp - Tile-level kernel builders -------------------------------//

#include "frontend/Kernels.h"

#include "support/Support.h"

#include <cmath>

using namespace tawa;

Type *tawa::getInputType(IrContext &Ctx, Precision P) {
  return P == Precision::FP16 ? static_cast<Type *>(Ctx.getF16Type())
                              : static_cast<Type *>(Ctx.getF8Type());
}

/// Emits `(X + C - 1) / C` — the IR form of tl.cdiv with a constant divisor.
static Value *emitCeilDiv(OpBuilder &B, Value *X, int64_t C) {
  Value *Cm1 = B.createConstantInt(C - 1);
  Value *CV = B.createConstantInt(C);
  return B.createDiv(B.createAdd(X, Cm1), CV);
}

//===----------------------------------------------------------------------===//
// GEMM (Fig. 2b)
//===----------------------------------------------------------------------===//

std::unique_ptr<Module> tawa::buildGemmModule(IrContext &Ctx,
                                              const GemmKernelConfig &Config) {
  auto M = std::make_unique<Module>(Ctx);
  M->setAttr("num-warps", static_cast<int64_t>(8));

  OpBuilder B(Ctx);
  B.setInsertionPointToEnd(&M->getBody());

  Type *Ptr = Ctx.getPtrType();
  Type *I32 = Ctx.getI32Type();
  FuncOp *Func =
      B.createFunc("matmul", {Ptr, Ptr, Ptr, I32, I32, I32});
  // Recorded so the persistent-kernel pass can derive the tile count from
  // the runtime dimensions (§IV-B).
  Func->setAttr("tile_m", Config.TileM);
  Func->setAttr("tile_n", Config.TileN);
  Func->setAttr("tile_k", Config.TileK);
  Func->setAttr("arg_m", static_cast<int64_t>(3));
  Func->setAttr("arg_n", static_cast<int64_t>(4));
  Block &Body = Func->getBody();
  B.setInsertionPointToEnd(&Body);

  Value *ADesc = Body.getArgument(0);
  Value *BDesc = Body.getArgument(1);
  Value *CDesc = Body.getArgument(2);
  Value *DimM = Body.getArgument(3);
  Value *DimN = Body.getArgument(4);
  Value *DimK = Body.getArgument(5);
  (void)DimN;

  Type *InTy = getInputType(Ctx, Config.InPrecision);
  auto *ATileTy = Ctx.getTensorType({Config.TileM, Config.TileK}, InTy);
  auto *BTileTy = Ctx.getTensorType({Config.TileN, Config.TileK}, InTy);
  auto *AccTy =
      Ctx.getTensorType({Config.TileM, Config.TileN}, Ctx.getF32Type());

  // Grid decomposition: pid -> (pid_m, pid_n) as in Fig. 2b L6-11.
  Value *Pid = B.createProgramId(0);
  Value *PidZ = Config.Batched ? B.createProgramId(1) : nullptr;
  Value *NumPidM = emitCeilDiv(B, DimM, Config.TileM);
  Value *PidM = B.createRem(Pid, NumPidM);
  Value *PidN = B.createDiv(Pid, NumPidM);
  Value *OffAm = B.createMul(PidM, B.createConstantInt(Config.TileM));
  Value *OffBn = B.createMul(PidN, B.createConstantInt(Config.TileN));

  Value *AccInit = B.createConstantTensor(0.0, AccTy);
  Value *Zero = B.createConstantInt(0);
  Value *One = B.createConstantInt(1);
  Value *KTiles = emitCeilDiv(B, DimK, Config.TileK);

  // Main loop: iter_args are (acc, o_k); o_k's update is the "iteration
  // statement" the partitioner must peel away from the dot (§III-C1).
  ForOp *Loop = B.createFor(Zero, KTiles, One, {AccInit, Zero});
  {
    OpBuilder LB(Ctx);
    LB.setInsertionPointToEnd(&Loop->getBody());
    Value *Acc = Loop->getIterArg(0);
    Value *OffK = Loop->getIterArg(1);
    std::vector<Value *> AOffs = {OffAm, OffK};
    std::vector<Value *> BOffs = {OffBn, OffK};
    if (Config.Batched) {
      AOffs.insert(AOffs.begin(), PidZ);
      BOffs.insert(BOffs.begin(), PidZ);
    }
    Value *ATile = LB.createTmaLoad(ADesc, AOffs, ATileTy);
    Value *BTile = LB.createTmaLoad(BDesc, BOffs, BTileTy);
    Value *AccNext = LB.createDot(ATile, BTile, Acc, /*TransB=*/true);
    Value *OffKNext =
        LB.createAdd(OffK, LB.createConstantInt(Config.TileK));
    LB.createYield({AccNext, OffKNext});
  }

  // Epilogue: convert and write back C.
  Value *AccOut = Loop->getResult(0);
  Value *COut = B.createCast(AccOut, Ctx.getF16Type());

  if (!Config.PointerEpilogue) {
    std::vector<Value *> COffs = {OffAm, OffBn};
    if (Config.Batched)
      COffs.insert(COffs.begin(), PidZ);
    B.createTmaStore(CDesc, COffs, COut);
  } else {
    // Fig. 2b L21-25: explicit pointer arithmetic epilogue.
    auto *RowTy = Ctx.getTensorType({Config.TileM}, I32);
    auto *ColTy = Ctx.getTensorType({Config.TileN}, I32);
    auto *IdxTy =
        Ctx.getTensorType({Config.TileM, Config.TileN}, I32);
    auto *PtrTy =
        Ctx.getTensorType({Config.TileM, Config.TileN}, Ptr);
    Value *OffsCm = B.createBinaryI(
        OpKind::AddI, B.createSplat(OffAm, RowTy), B.createMakeRange(0, Config.TileM));
    Value *OffsCn = B.createBinaryI(
        OpKind::AddI, B.createSplat(OffBn, ColTy), B.createMakeRange(0, Config.TileN));
    Value *RowIdx =
        B.createBroadcast(B.createExpandDims(OffsCm, 1), IdxTy);
    Value *ColIdx =
        B.createBroadcast(B.createExpandDims(OffsCn, 0), IdxTy);
    // Linear index: row * N + col (row-major C with leading dim N).
    Value *StrideCm = B.createSplat(DimN, IdxTy);
    Value *Linear = B.createBinaryI(
        OpKind::AddI, B.createBinaryI(OpKind::MulI, RowIdx, StrideCm),
        ColIdx);
    if (Config.Batched) {
      // C is (batch, M, N): skip pid_z full M*N planes, or every batch
      // races on batch 0's plane and results depend on CTA scheduling.
      Value *BatchOff = B.createMul(PidZ, B.createMul(DimM, DimN));
      Linear = B.createBinaryI(OpKind::AddI, Linear,
                               B.createSplat(BatchOff, IdxTy));
    }
    Value *CPtrs = B.createAddPtr(B.createSplat(CDesc, PtrTy), Linear);
    B.createStore(CPtrs, COut);
  }

  B.createReturn();
  return M;
}

//===----------------------------------------------------------------------===//
// Split-K GEMM (cross-CTA reduction epilogue)
//===----------------------------------------------------------------------===//

std::unique_ptr<Module>
tawa::buildSplitKGemmModule(IrContext &Ctx, const GemmKernelConfig &Config) {
  auto M = std::make_unique<Module>(Ctx);
  M->setAttr("num-warps", static_cast<int64_t>(8));

  OpBuilder B(Ctx);
  B.setInsertionPointToEnd(&M->getBody());

  Type *Ptr = Ctx.getPtrType();
  Type *I32 = Ctx.getI32Type();
  FuncOp *Func =
      B.createFunc("matmul_splitk", {Ptr, Ptr, Ptr, I32, I32, I32});
  Func->setAttr("tile_m", Config.TileM);
  Func->setAttr("tile_n", Config.TileN);
  Func->setAttr("tile_k", Config.TileK);
  Func->setAttr("arg_m", static_cast<int64_t>(3));
  Func->setAttr("arg_n", static_cast<int64_t>(4));
  Block &Body = Func->getBody();
  B.setInsertionPointToEnd(&Body);

  Value *ADesc = Body.getArgument(0);
  Value *BDesc = Body.getArgument(1);
  Value *CDesc = Body.getArgument(2);
  Value *DimM = Body.getArgument(3);
  Value *DimN = Body.getArgument(4);
  Value *DimK = Body.getArgument(5);

  Type *InTy = getInputType(Ctx, Config.InPrecision);
  auto *ATileTy = Ctx.getTensorType({Config.TileM, Config.TileK}, InTy);
  auto *BTileTy = Ctx.getTensorType({Config.TileN, Config.TileK}, InTy);
  auto *AccTy =
      Ctx.getTensorType({Config.TileM, Config.TileN}, Ctx.getF32Type());

  // Grid: axis 0 walks output tiles exactly like @matmul; axis 1 is the K
  // split. num_programs(1) IS the split factor — a pure launch parameter,
  // so one compiled program serves every split factor.
  Value *Pid = B.createProgramId(0);
  Value *Split = B.createProgramId(1);
  Value *NumSplits = B.createNumPrograms(1);
  Value *NumPidM = emitCeilDiv(B, DimM, Config.TileM);
  Value *PidM = B.createRem(Pid, NumPidM);
  Value *PidN = B.createDiv(Pid, NumPidM);
  Value *OffAm = B.createMul(PidM, B.createConstantInt(Config.TileM));
  Value *OffBn = B.createMul(PidN, B.createConstantInt(Config.TileN));

  Value *AccInit = B.createConstantTensor(0.0, AccTy);
  Value *One = B.createConstantInt(1);
  Value *KTiles = emitCeilDiv(B, DimK, Config.TileK);
  // This CTA's contiguous K-tile slice: [k0, min(kTiles, k0 + kPerSplit)).
  // ceil-div with a RUNTIME divisor, so trailing splits run fewer (possibly
  // zero) iterations when the split factor does not divide the tile count.
  Value *KPerSplit = B.createDiv(
      B.createAdd(KTiles, B.createBinaryI(OpKind::SubI, NumSplits, One)),
      NumSplits);
  Value *K0 = B.createMul(Split, KPerSplit);
  Value *K1 = B.createMin(KTiles, B.createAdd(K0, KPerSplit));
  Value *OffK0 = B.createMul(K0, B.createConstantInt(Config.TileK));

  ForOp *Loop = B.createFor(K0, K1, One, {AccInit, OffK0});
  {
    OpBuilder LB(Ctx);
    LB.setInsertionPointToEnd(&Loop->getBody());
    Value *Acc = Loop->getIterArg(0);
    Value *OffK = Loop->getIterArg(1);
    Value *ATile = LB.createTmaLoad(ADesc, {OffAm, OffK}, ATileTy);
    Value *BTile = LB.createTmaLoad(BDesc, {OffBn, OffK}, BTileTy);
    Value *AccNext = LB.createDot(ATile, BTile, Acc, /*TransB=*/true);
    Value *OffKNext =
        LB.createAdd(OffK, LB.createConstantInt(Config.TileK));
    LB.createYield({AccNext, OffKNext});
  }
  Value *AccOut = Loop->getResult(0);

  if (Config.DeadlockEpilogue) {
    // Wait on an mbarrier nobody arrives on: a deterministic wedged
    // cross-CTA reduction for the pinned tawa-diag-v1 post-mortem test.
    Value *Bar = B.createMBarrierAlloc(1, "splitk_stuck");
    Value *Z = B.createConstantInt(0);
    B.createMBarrierWait(Bar, Z, Z);
    B.createReturn();
    return M;
  }

  // Reduction epilogue: atomically accumulate the RAW f32 partial sum into
  // C (f32, host-zero-initialized). Same pointer arithmetic as Fig. 2b
  // L21-25, but tt.atomic_add instead of tt.store — the cross-CTA surface.
  auto *RowTy = Ctx.getTensorType({Config.TileM}, I32);
  auto *ColTy = Ctx.getTensorType({Config.TileN}, I32);
  auto *IdxTy = Ctx.getTensorType({Config.TileM, Config.TileN}, I32);
  auto *PtrTy = Ctx.getTensorType({Config.TileM, Config.TileN}, Ptr);
  Value *OffsCm = B.createBinaryI(OpKind::AddI, B.createSplat(OffAm, RowTy),
                                  B.createMakeRange(0, Config.TileM));
  Value *OffsCn = B.createBinaryI(OpKind::AddI, B.createSplat(OffBn, ColTy),
                                  B.createMakeRange(0, Config.TileN));
  Value *RowIdx = B.createBroadcast(B.createExpandDims(OffsCm, 1), IdxTy);
  Value *ColIdx = B.createBroadcast(B.createExpandDims(OffsCn, 0), IdxTy);
  Value *StrideCm = B.createSplat(DimN, IdxTy);
  Value *Linear = B.createBinaryI(
      OpKind::AddI, B.createBinaryI(OpKind::MulI, RowIdx, StrideCm), ColIdx);
  Value *CPtrs = B.createAddPtr(B.createSplat(CDesc, PtrTy), Linear);
  B.createAtomicAdd(CPtrs, AccOut);

  B.createReturn();
  return M;
}

//===----------------------------------------------------------------------===//
// Grouped / MoE GEMM (ragged per-expert batches)
//===----------------------------------------------------------------------===//

std::unique_ptr<Module>
tawa::buildGroupedGemmModule(IrContext &Ctx, const GemmKernelConfig &Config) {
  auto M = std::make_unique<Module>(Ctx);
  M->setAttr("num-warps", static_cast<int64_t>(8));

  OpBuilder B(Ctx);
  B.setInsertionPointToEnd(&M->getBody());

  Type *Ptr = Ctx.getPtrType();
  Type *I32 = Ctx.getI32Type();
  FuncOp *Func =
      B.createFunc("matmul_grouped", {Ptr, Ptr, Ptr, Ptr, I32, I32});
  Func->setAttr("tile_m", Config.TileM);
  Func->setAttr("tile_n", Config.TileN);
  Func->setAttr("tile_k", Config.TileK);
  Block &Body = Func->getBody();
  B.setInsertionPointToEnd(&Body);

  Value *ADesc = Body.getArgument(0);
  Value *BDesc = Body.getArgument(1);
  Value *CDesc = Body.getArgument(2);
  Value *Table = Body.getArgument(3);
  Value *DimN = Body.getArgument(4);
  Value *DimK = Body.getArgument(5);

  Type *InTy = getInputType(Ctx, Config.InPrecision);
  auto *ATileTy = Ctx.getTensorType({Config.TileM, Config.TileK}, InTy);
  auto *BTileTy = Ctx.getTensorType({Config.TileN, Config.TileK}, InTy);
  auto *AccTy =
      Ctx.getTensorType({Config.TileM, Config.TileN}, Ctx.getF32Type());

  // Grid: axis 1 is the expert id; axis 0 flattens this expert's
  // (m tile, n tile) pairs n-major. The per-expert row range comes from the
  // (E, 2) offset table [row_start, m_size] read with tt.load_scalar — the
  // data-dependent part the driver mirrors when it builds the ragged CTA
  // list for runCtaBatch.
  Value *Pid = B.createProgramId(0);
  Value *Expert = B.createProgramId(1);
  Value *One = B.createConstantInt(1);
  Value *TblBase = B.createMul(Expert, B.createConstantInt(2));
  Value *RowStart = B.createLoadScalar(Table, TblBase);
  Value *MSize = B.createLoadScalar(Table, B.createAdd(TblBase, One));
  Value *NumPidN = emitCeilDiv(B, DimN, Config.TileN);
  Value *PidM = B.createDiv(Pid, NumPidN);
  Value *PidN = B.createRem(Pid, NumPidN);
  Value *RowInExpert = B.createMul(PidM, B.createConstantInt(Config.TileM));
  Value *OffAm = B.createAdd(RowStart, RowInExpert);
  Value *OffBn = B.createMul(PidN, B.createConstantInt(Config.TileN));

  Value *AccInit = B.createConstantTensor(0.0, AccTy);
  Value *Zero = B.createConstantInt(0);
  Value *KTiles = emitCeilDiv(B, DimK, Config.TileK);

  ForOp *Loop = B.createFor(Zero, KTiles, One, {AccInit, Zero});
  {
    OpBuilder LB(Ctx);
    LB.setInsertionPointToEnd(&Loop->getBody());
    Value *Acc = Loop->getIterArg(0);
    Value *OffK = Loop->getIterArg(1);
    // A over-reads past the expert's rows on partial tiles; TMA's
    // out-of-bounds zero fill makes that harmless (rows are independent
    // and the store below masks them off).
    Value *ATile = LB.createTmaLoad(ADesc, {OffAm, OffK}, ATileTy);
    Value *BTile = LB.createTmaLoad(BDesc, {Expert, OffBn, OffK}, BTileTy);
    Value *AccNext = LB.createDot(ATile, BTile, Acc, /*TransB=*/true);
    Value *OffKNext =
        LB.createAdd(OffK, LB.createConstantInt(Config.TileK));
    LB.createYield({AccNext, OffKNext});
  }
  Value *AccOut = Loop->getResult(0);
  Value *COut = B.createCast(AccOut, Ctx.getF16Type());

  // Masked pointer epilogue: rows at or past m_size select a -1 linear
  // index, which tt.store's bounds check drops (partial-tile masking).
  auto *RowTy = Ctx.getTensorType({Config.TileM}, I32);
  auto *ColTy = Ctx.getTensorType({Config.TileN}, I32);
  auto *IdxTy = Ctx.getTensorType({Config.TileM, Config.TileN}, I32);
  auto *PtrTy = Ctx.getTensorType({Config.TileM, Config.TileN}, Ptr);
  Value *RowIota = B.createMakeRange(0, Config.TileM);
  Value *OffsCm = B.createBinaryI(OpKind::AddI, B.createSplat(OffAm, RowTy),
                                  RowIota);
  Value *RowLocal = B.createBinaryI(
      OpKind::AddI, B.createSplat(RowInExpert, RowTy), RowIota);
  Value *OffsCn = B.createBinaryI(OpKind::AddI, B.createSplat(OffBn, ColTy),
                                  B.createMakeRange(0, Config.TileN));
  Value *RowIdx = B.createBroadcast(B.createExpandDims(OffsCm, 1), IdxTy);
  Value *RowLoc2 = B.createBroadcast(B.createExpandDims(RowLocal, 1), IdxTy);
  Value *ColIdx = B.createBroadcast(B.createExpandDims(OffsCn, 0), IdxTy);
  Value *StrideCm = B.createSplat(DimN, IdxTy);
  Value *Linear = B.createBinaryI(
      OpKind::AddI, B.createBinaryI(OpKind::MulI, RowIdx, StrideCm), ColIdx);
  Value *Valid = B.createCmpSlt(RowLoc2, B.createSplat(MSize, IdxTy));
  Value *Masked =
      B.createSelect(Valid, Linear, B.createConstantTensor(-1.0, IdxTy));
  Value *CPtrs = B.createAddPtr(B.createSplat(CDesc, PtrTy), Masked);
  B.createStore(CPtrs, COut);

  B.createReturn();
  return M;
}

//===----------------------------------------------------------------------===//
// Multi-head attention (§V-D; T/C/U structure of Algorithm 1)
//===----------------------------------------------------------------------===//

std::unique_ptr<Module>
tawa::buildAttentionModule(IrContext &Ctx, const AttentionKernelConfig &C) {
  auto M = std::make_unique<Module>(Ctx);
  M->setAttr("num-warps", static_cast<int64_t>(8));

  OpBuilder B(Ctx);
  B.setInsertionPointToEnd(&M->getBody());

  Type *Ptr = Ctx.getPtrType();
  Type *I32 = Ctx.getI32Type();
  Type *F32 = Ctx.getF32Type();
  FuncOp *Func = B.createFunc("mha", {Ptr, Ptr, Ptr, Ptr, I32});
  Block &Body = Func->getBody();
  B.setInsertionPointToEnd(&Body);

  Value *QDesc = Body.getArgument(0);
  Value *KDesc = Body.getArgument(1);
  Value *VDesc = Body.getArgument(2);
  Value *ODesc = Body.getArgument(3);
  Value *SeqLen = Body.getArgument(4);

  Type *InTy = getInputType(Ctx, C.InPrecision);
  auto *QTileTy = Ctx.getTensorType({C.TileQ, C.HeadDim}, InTy);
  auto *KvTileTy = Ctx.getTensorType({C.TileKv, C.HeadDim}, InTy);
  auto *ScoreTy = Ctx.getTensorType({C.TileQ, C.TileKv}, F32);
  auto *RowVecTy = Ctx.getTensorType({C.TileQ}, F32);
  auto *AccTy = Ctx.getTensorType({C.TileQ, C.HeadDim}, F32);

  Value *Pid = B.createProgramId(0);
  Value *BatchHead = B.createProgramId(1);
  Value *OffQ = B.createMul(Pid, B.createConstantInt(C.TileQ));
  Value *Zero = B.createConstantInt(0);
  Value *One = B.createConstantInt(1);

  Value *Q = B.createTmaLoad(QDesc, {BatchHead, OffQ, Zero}, QTileTy);

  Value *MInit = B.createConstantTensor(-1e30, RowVecTy);
  Value *LInit = B.createConstantTensor(0.0, RowVecTy);
  Value *AccInit = B.createConstantTensor(0.0, AccTy);

  Value *KvTiles = emitCeilDiv(B, SeqLen, C.TileKv);
  if (C.Causal) {
    // Only KV tiles at or before the diagonal contribute.
    Value *QEnd = B.createAdd(OffQ, B.createConstantInt(C.TileQ));
    KvTiles = B.createMin(KvTiles, emitCeilDiv(B, QEnd, C.TileKv));
  }

  const double Log2E = 1.4426950408889634;
  const double Scale = 1.0 / std::sqrt(static_cast<double>(C.HeadDim));

  ForOp *Loop = B.createFor(Zero, KvTiles, One, {AccInit, MInit, LInit, Zero});
  {
    OpBuilder LB(Ctx);
    LB.setInsertionPointToEnd(&Loop->getBody());
    Value *Acc = Loop->getIterArg(0);
    Value *MI = Loop->getIterArg(1);
    Value *LI = Loop->getIterArg(2);
    Value *OffKv = Loop->getIterArg(3);
    Value *LZero = LB.createConstantInt(0);

    Value *KTile = LB.createTmaLoad(KDesc, {BatchHead, OffKv, LZero}, KvTileTy);
    Value *VTile = LB.createTmaLoad(VDesc, {BatchHead, OffKv, LZero}, KvTileTy);

    // --- T stage: S = Q * K^T (tensor cores).
    Value *SInit = LB.createConstantTensor(0.0, ScoreTy);
    Value *S = LB.createDot(Q, KTile, SInit, /*TransB=*/true);
    S = LB.createBinaryF(OpKind::MulF, S,
                         LB.createConstantTensor(Scale, ScoreTy));

    // --- C stage: online softmax rescaling (CUDA cores).
    if (C.Causal) {
      auto *RowIdxTy = Ctx.getTensorType({C.TileQ, C.TileKv}, I32);
      Value *RowIota = LB.createMakeRange(0, C.TileQ);
      Value *ColIota = LB.createMakeRange(0, C.TileKv);
      Value *RowBase = LB.createSplat(
          OffQ, cast<TensorType>(RowIota->getType()));
      Value *ColBase = LB.createSplat(
          OffKv, cast<TensorType>(ColIota->getType()));
      Value *Rows = LB.createBroadcast(
          LB.createExpandDims(
              LB.createBinaryI(OpKind::AddI, RowIota, RowBase), 1),
          RowIdxTy);
      Value *Cols = LB.createBroadcast(
          LB.createExpandDims(
              LB.createBinaryI(OpKind::AddI, ColIota, ColBase), 0),
          RowIdxTy);
      // Mask out the strict upper triangle (col > row <=> row < col).
      Value *Mask = LB.createCmpSlt(Rows, Cols);
      S = LB.createSelect(Mask, LB.createConstantTensor(-1e30, ScoreTy), S);
    }

    Value *SMax = LB.createReduce(S, "max", 1);
    Value *MNew = LB.createBinaryF(OpKind::MaxF, MI, SMax);
    Value *MNewB = LB.createBroadcast(LB.createExpandDims(MNew, 1), ScoreTy);
    Value *Log2EScore = LB.createConstantTensor(Log2E, ScoreTy);
    Value *P = LB.createExp2(LB.createBinaryF(
        OpKind::MulF, LB.createBinaryF(OpKind::SubF, S, MNewB), Log2EScore));
    Value *Log2ERow = LB.createConstantTensor(Log2E, RowVecTy);
    Value *Alpha = LB.createExp2(LB.createBinaryF(
        OpKind::MulF, LB.createBinaryF(OpKind::SubF, MI, MNew), Log2ERow));
    Value *LNew = LB.createBinaryF(
        OpKind::AddF, LB.createBinaryF(OpKind::MulF, LI, Alpha),
        LB.createReduce(P, "sum", 1));
    Value *AlphaB = LB.createBroadcast(LB.createExpandDims(Alpha, 1), AccTy);
    Value *AccScaled = LB.createBinaryF(OpKind::MulF, Acc, AlphaB);
    Value *PIn = LB.createCast(P, InTy);

    // --- U stage: Acc += P * V (tensor cores).
    Value *AccNew = LB.createDot(PIn, VTile, AccScaled, /*TransB=*/false);

    Value *OffKvNext = LB.createAdd(OffKv, LB.createConstantInt(C.TileKv));
    LB.createYield({AccNew, MNew, LNew, OffKvNext});
  }

  // Normalize and write back.
  Value *AccOut = Loop->getResult(0);
  Value *LOut = Loop->getResult(2);
  Value *LOutB = B.createBroadcast(B.createExpandDims(LOut, 1), AccTy);
  Value *Out = B.createBinaryF(OpKind::DivF, AccOut, LOutB);
  Value *OutF16 = B.createCast(Out, Ctx.getF16Type());
  B.createTmaStore(ODesc, {BatchHead, OffQ, Zero}, OutF16);
  B.createReturn();
  return M;
}
