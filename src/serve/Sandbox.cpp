//===- Sandbox.cpp - Out-of-process execution supervisor ------------------===//

#include "serve/Sandbox.h"

#include "support/Env.h"
#include "support/FaultInject.h"
#include "support/Support.h"

#include <algorithm>
#include <cerrno>
#include <csignal>
#include <cstring>
#include <thread>

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

using namespace tawa;
using namespace tawa::serve;
using Clock = std::chrono::steady_clock;

//===----------------------------------------------------------------------===//
// Config
//===----------------------------------------------------------------------===//

SandboxConfig SandboxConfig::fromEnv() {
  SandboxConfig C;
  C.Pool = envInt64("TAWA_SANDBOX_POOL", C.Pool);
  C.HeartbeatMs = envInt64("TAWA_SANDBOX_HEARTBEAT_MS", C.HeartbeatMs);
  C.HeartbeatTimeoutMs =
      envInt64("TAWA_SANDBOX_HEARTBEAT_TIMEOUT_MS", C.HeartbeatTimeoutMs);
  C.BackoffBaseMs = envInt64("TAWA_SANDBOX_BACKOFF_MS", C.BackoffBaseMs);
  C.BackoffMaxMs = envInt64("TAWA_SANDBOX_BACKOFF_MAX_MS", C.BackoffMaxMs);
  C.RlimitAsMb = envInt64("TAWA_SANDBOX_RLIMIT_AS_MB", C.RlimitAsMb);
  C.RlimitCpuSec = envInt64("TAWA_SANDBOX_RLIMIT_CPU_S", C.RlimitCpuSec);
  C.Binary = envString("TAWA_SANDBOX_BIN", "");
  return C;
}

namespace {

/// The runner binary ships next to whatever executable is running (the
/// daemon and the test binaries all live in the build dir).
std::string siblingSandboxBinary() {
  char Buf[4096];
  ssize_t N = ::readlink("/proc/self/exe", Buf, sizeof(Buf) - 1);
  if (N <= 0)
    return "tawa-sandbox";
  Buf[N] = '\0';
  std::string Exe(Buf);
  size_t Slash = Exe.rfind('/');
  if (Slash == std::string::npos)
    return "tawa-sandbox";
  return Exe.substr(0, Slash + 1) + "tawa-sandbox";
}

bool sendAllFd(int Fd, const std::string &Data) {
  size_t Off = 0;
  while (Off < Data.size()) {
    ssize_t N =
        ::send(Fd, Data.data() + Off, Data.size() - Off, MSG_NOSIGNAL);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return false;
    }
    Off += static_cast<size_t>(N);
  }
  return true;
}

} // namespace

//===----------------------------------------------------------------------===//
// Lifecycle
//===----------------------------------------------------------------------===//

Supervisor::Supervisor(SandboxConfig C) : Cfg(C) {
  Cfg.Pool = std::max<int64_t>(1, Cfg.Pool);
  Cfg.HeartbeatMs = std::max<int64_t>(1, Cfg.HeartbeatMs);
  Cfg.HeartbeatTimeoutMs = std::max<int64_t>(1, Cfg.HeartbeatTimeoutMs);
  Cfg.BackoffBaseMs = std::max<int64_t>(0, Cfg.BackoffBaseMs);
  Cfg.BackoffMaxMs = std::max(Cfg.BackoffBaseMs, Cfg.BackoffMaxMs);
  if (Cfg.Binary.empty())
    Cfg.Binary = siblingSandboxBinary();
  Slots.resize(static_cast<size_t>(Cfg.Pool));
}

Supervisor::~Supervisor() {
  // Slots are only touched while Busy by the owning executor; the service
  // drains before destroying the supervisor, so every slot is idle here.
  for (Slot &S : Slots)
    S.Proc.reset(); // ~Subprocess kills + reaps.
}

void Supervisor::setDeathHook(DeathHook H) { OnDeath = std::move(H); }

SandboxStats Supervisor::stats() const {
  std::lock_guard<std::mutex> L(StatsMu);
  return Stats;
}

void Supervisor::bumpStat(int64_t SandboxStats::*Field) {
  std::lock_guard<std::mutex> L(StatsMu);
  ++(Stats.*Field);
}

int64_t Supervisor::restartBackoffMs(int64_t ConsecFailures, int64_t BaseMs,
                                     int64_t MaxMs) {
  if (ConsecFailures <= 0 || BaseMs <= 0)
    return 0;
  int64_t Shift = std::min<int64_t>(ConsecFailures - 1, 20);
  return std::min(MaxMs, BaseMs << Shift);
}

void Supervisor::noteFailure(Slot &S) {
  ++S.ConsecFails;
  S.NextSpawnAt =
      Clock::now() + std::chrono::milliseconds(restartBackoffMs(
                         S.ConsecFails, Cfg.BackoffBaseMs, Cfg.BackoffMaxMs));
}

//===----------------------------------------------------------------------===//
// Child I/O
//===----------------------------------------------------------------------===//

int Supervisor::readLine(Slot &S, int64_t TimeoutMs, std::string &Line) {
  for (;;) {
    size_t NL = S.Buf.find('\n');
    if (NL != std::string::npos) {
      Line = S.Buf.substr(0, NL);
      S.Buf.erase(0, NL + 1);
      return 1;
    }
    pollfd P = {S.Proc->channel(), POLLIN, 0};
    int R = ::poll(&P, 1, static_cast<int>(std::max<int64_t>(0, TimeoutMs)));
    if (R < 0) {
      if (errno == EINTR)
        continue;
      return -1;
    }
    if (R == 0)
      return 0;
    char Tmp[4096];
    ssize_t N = ::recv(S.Proc->channel(), Tmp, sizeof(Tmp), 0);
    if (N < 0 && errno == EINTR)
      continue;
    if (N <= 0)
      return -1;
    S.Buf.append(Tmp, static_cast<size_t>(N));
  }
}

std::string Supervisor::ensureChild(Slot &S) {
  if (S.Proc) {
    // Reap a child that died while idle (OOM kill, rlimit, external kill)
    // so the respawn path below handles it like any other death.
    if (!S.Proc->poll().Running)
      S.Proc.reset();
  }
  if (S.Proc)
    return "";

  // Backoff gate: a crash-looping binary must not spin fork().
  auto Now = Clock::now();
  if (Now < S.NextSpawnAt)
    std::this_thread::sleep_until(S.NextSpawnAt);

  if (faults::enabled() && faults::shouldFailNext(faults::Site::SandboxSpawn)) {
    noteFailure(S);
    bumpStat(&SandboxStats::SpawnFailures);
    return "sandbox spawn: injected sandbox.spawn fault";
  }

  Subprocess::Options O;
  O.Argv = {Cfg.Binary};
  O.RlimitAsMb = Cfg.RlimitAsMb;
  O.RlimitCpuSec = Cfg.RlimitCpuSec;
  O.ExtraEnv.emplace_back("TAWA_SANDBOX_HEARTBEAT_MS",
                          std::to_string(Cfg.HeartbeatMs));
  std::string Err;
  S.Proc = Subprocess::spawn(O, Err);
  if (!S.Proc) {
    noteFailure(S);
    bumpStat(&SandboxStats::SpawnFailures);
    return "sandbox spawn: " + Err;
  }

  // The runner announces itself before serving; a binary that exits
  // immediately (bad link, wrong path contents) surfaces here instead of
  // on the first request.
  std::string Ready;
  int R = readLine(S, Cfg.HeartbeatTimeoutMs, Ready);
  if (R != 1 || Ready != "ready") {
    S.Proc->kill(SIGKILL);
    S.Proc.reset();
    S.Buf.clear();
    noteFailure(S);
    bumpStat(&SandboxStats::SpawnFailures);
    return "sandbox spawn: runner not ready";
  }
  bumpStat(&SandboxStats::Spawns);
  return "";
}

//===----------------------------------------------------------------------===//
// Request execution
//===----------------------------------------------------------------------===//

std::string Supervisor::execute(const std::string &RequestLine,
                                int64_t RemainingMs, std::string &RespLine) {
  Slot *S = nullptr;
  {
    std::unique_lock<std::mutex> L(Mu);
    SlotCV.wait(L, [&] {
      for (Slot &Sl : Slots)
        if (!Sl.Busy) {
          S = &Sl;
          return true;
        }
      return false;
    });
    S->Busy = true;
  }
  std::string Err = runSlot(*S, RequestLine, RemainingMs, RespLine);
  {
    std::lock_guard<std::mutex> L(Mu);
    S->Busy = false;
  }
  SlotCV.notify_one();
  if (!Err.empty() && OnDeath &&
      Err.compare(0, 14, "sandbox spawn:") != 0) {
    bool Timeout = Err.compare(0, 15, "sandbox timeout") == 0;
    OnDeath(Timeout ? "sandbox-timeout" : "sandbox-crash", Err);
  }
  return Err;
}

std::string Supervisor::runSlot(Slot &S, const std::string &RequestLine,
                                int64_t RemainingMs, std::string &RespLine) {
  if (std::string Err = ensureChild(S); !Err.empty())
    return Err;
  bumpStat(&SandboxStats::Requests);

  // Forward the parent's armed fault spec with the frame (never via spawn
  // env): faults::reset() in the parent disarms the child on its next
  // request instead of leaving a stale spec in a surviving process.
  std::string Spec = faults::currentSpec();
  std::string Frame =
      formatString("req %lld %s ",
                   static_cast<long long>(std::max<int64_t>(1, RemainingMs)),
                   Spec.empty() ? "-" : Spec.c_str()) +
      RequestLine + "\n";

  // Every failure replaces the child: SIGKILL (no-op on an already-dead
  // pid), reap, classify. AppendExit adds the waitpid classification —
  // timeout strings stay fixed (the exit status would always be our own
  // SIGKILL, and deterministic messages matter more than redundancy).
  auto fail = [&](std::string Reason, int64_t SandboxStats::*Stat,
                  bool AppendExit) -> std::string {
    S.Proc->kill(SIGKILL);
    Subprocess::ExitStatus St = S.Proc->wait();
    S.Proc.reset();
    S.Buf.clear();
    noteFailure(S);
    bumpStat(Stat);
    if (AppendExit)
      Reason += St.describe();
    return Reason;
  };

  if (!sendAllFd(S.Proc->channel(), Frame))
    return fail("sandbox crash: ", &SandboxStats::Crashes, true);

  Clock::time_point Start = Clock::now();
  Clock::time_point Overall =
      Start + std::chrono::milliseconds(std::max<int64_t>(1, RemainingMs) +
                                        Cfg.HeartbeatTimeoutMs);
  Clock::time_point HbDeadline =
      Start + std::chrono::milliseconds(Cfg.HeartbeatTimeoutMs);

  for (;;) {
    Clock::time_point Now = Clock::now();
    if (Now >= Overall)
      return fail("sandbox timeout: deadline exceeded",
                  &SandboxStats::Timeouts, false);
    if (Now >= HbDeadline)
      return fail("sandbox timeout: heartbeat lost", &SandboxStats::Timeouts,
                  false);
    int64_t WaitMs = std::chrono::duration_cast<std::chrono::milliseconds>(
                         std::min(HbDeadline, Overall) - Now)
                         .count() +
                     1;
    std::string Line;
    int R = readLine(S, WaitMs, Line);
    if (R < 0)
      return fail("sandbox crash: ", &SandboxStats::Crashes, true);
    if (R == 0)
      continue; // Deadlines re-checked at the top.
    if (Line == "hb") {
      HbDeadline =
          Clock::now() + std::chrono::milliseconds(Cfg.HeartbeatTimeoutMs);
      continue;
    }
    if (!Line.empty() && Line[0] == '{') {
      RespLine = std::move(Line);
      S.ConsecFails = 0;
      return "";
    }
    // Anything else on the channel is a corrupted stream; treat it as a
    // crash so the child is replaced.
    return fail("sandbox crash: corrupted stream", &SandboxStats::Crashes,
                false);
  }
}
