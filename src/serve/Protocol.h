//===- Protocol.h - tawa-serve wire protocol --------------------*- C++ -*-===//
//
// Request / response schemas for the tawa-serve daemon (docs/serving.md).
// Messages are newline-delimited single-line JSON documents over a unix
// socket: requests parse through the strict support/Json reader
// (tawa-serve-req-v1), responses render through a deterministic compact
// emitter (tawa-serve-resp-v1) with a stable field order, so a response
// built from identical result fields is identical byte-for-byte — the
// serve tests replay the fuzz corpus through the socket and diff against
// responses rendered from a direct Interpreter run.
//
// This layer is pure data <-> text: no sockets, no execution, no policy.
// Admission, retries, degradation and the breaker live in serve/Server.
//
//===----------------------------------------------------------------------===//

#ifndef TAWA_SERVE_PROTOCOL_H
#define TAWA_SERVE_PROTOCOL_H

#include "models/Frameworks.h"

#include <cstdint>
#include <string>
#include <vector>

namespace tawa {
namespace serve {

/// A decoded tawa-serve-req-v1 request. Parsing is strict: unknown
/// `kind`/`framework`/`precision` strings, wrongly-typed fields, and
/// out-of-range shapes are rejected up front (status "rejected", reason
/// "bad-request") rather than executed with silent defaults.
struct ServeRequest {
  enum class Kind { Ping, Gemm, Attention, Ir };

  std::string Id; ///< Echoed back verbatim; may be empty.
  Kind K = Kind::Ping;

  // kind = gemm | attention.
  Framework F = Framework::Tawa;
  GemmWorkload Gemm;
  AttentionWorkload Mha;
  bool Functional = false;

  // kind = ir: a textual module carrying fuzz.grid / fuzz.args (and
  // optionally fuzz.faults) launch attributes — the fuzz-corpus format.
  std::string IrText;

  /// Per-request deadline in wall milliseconds, 0 = server default. Covers
  /// queue wait + every retry attempt; the remaining budget maps onto the
  /// execution watchdog (RunOptions::MaxWallMs) so a trip yields the
  /// structured tawa-diag-v1 post-mortem.
  int64_t DeadlineMs = 0;
  /// Per-CTA step budget, 0 = server default (deterministic guardrail).
  int64_t MaxSteps = 0;

  /// Synthetic execution latency in milliseconds (load generator and the
  /// deterministic overload tests; capped at 60000).
  int64_t SleepMs = 0;
  /// Test hook: the request blocks on the service gate (Service::closeGate)
  /// before executing, making accept/reject sequences deterministic.
  bool WaitGate = false;
  /// Opt into out-of-process execution: the request runs in a warm
  /// tawa-sandbox child under the supervisor (docs/serving.md). The
  /// degradation ladder can also escalate a crashing compile key here.
  bool Sandbox = false;
};

/// Parses and validates one request line. Returns "" on success or a
/// deterministic reason string ("byte N: ..." for malformed JSON, a
/// field-specific message otherwise). On JSON-level failure \p Out.Id is
/// best-effort empty; on field-level failure the id has already been
/// captured so the rejection can be correlated.
std::string parseRequest(const std::string &Text, ServeRequest &Out);

/// A tawa-serve-resp-v1 response. Field semantics by status:
///  * "ok":       result fields valid; Attempts/Degrade tell the cost.
///  * "rejected": Reason is "overloaded" | "shutting-down" | "bad-request";
///                the request was never executed (bad-request also carries
///                Error with the parse/validation message).
///  * "failed":   executed but failed; Error/ErrorKind carry the
///                classified taxonomy (support/Status.h), DiagJson the
///                post-mortem when a guardrail tripped.
struct ServeResponse {
  enum class Status { Ok, Rejected, Failed };

  std::string Id;
  Status St = Status::Ok;
  std::string Reason;
  std::string Error;
  std::string ErrorKind; ///< errorKindName; "" when not a failure.
  /// Execution attempts consumed (0 for rejections; >1 means retries).
  int64_t Attempts = 0;
  /// Degradation-ladder level the final attempt ran at:
  /// "fused" | "unfused" | "serial".
  std::string Degrade = "fused";

  // kind = gemm | attention results.
  bool HasRun = false;
  double Micros = 0;
  double TFlops = 0;
  double MaxRelError = -1;
  int64_t SmemBytes = 0;
  int64_t RegsPerThread = 0;

  // kind = ir results: fnv1a64 of each output tensor's raw bytes (launch
  // args with FillSeed == 0, in argument order), plus the replayed SM
  // schedule's cycle count.
  bool HasIr = false;
  std::vector<std::string> Outputs;
  double Cycles = -1;

  /// Pretty tawa-diag-v1 document (sim/Diag renderJson), "" when no
  /// diagnostic; embedded compactly under "diag".
  std::string DiagJson;

  /// One-line compact JSON, no trailing newline (the transport adds '\n').
  std::string render() const;
};

/// Parses a tawa-serve-resp-v1 line back into a ServeResponse — the
/// inverse of render(), used by the sandbox supervisor to decode a child
/// process's answer. Returns "" on success or a deterministic reason
/// string. parse(render(R)) reproduces R's wire-visible fields, so
/// re-rendering in the parent is byte-identical (the sandbox differential
/// tests pin this).
std::string parseResponse(const std::string &Text, ServeResponse &Out);

/// Short machine names used on the wire ("tawa", "cublas", "triton",
/// "triton-nopipe", "tilelang", "thunderkittens", "fa3", "peak").
const char *frameworkWireName(Framework F);
/// Inverse of frameworkWireName; returns false on unknown names.
bool frameworkFromWireName(const std::string &Name, Framework &Out);

} // namespace serve
} // namespace tawa

#endif // TAWA_SERVE_PROTOCOL_H
