//===- Sandbox.h - Out-of-process execution supervisor ----------*- C++ -*-===//
//
// The supervision layer over support/Subprocess (docs/serving.md): a warm
// pool of tawa-sandbox runner processes, one request in flight per
// process. A request routed here is written as one frame
//
//   req <remaining-ms> <fault-spec|-> <tawa-serve-req-v1 json>\n
//
// and answered with exactly one tawa-serve-resp-v1 line; while executing,
// the child emits `hb` heartbeat lines. The supervisor classifies every
// way a child can die:
//
//   * exit/signal (waitpid)            -> "sandbox crash: signal 9 (SIGKILL)"
//   * heartbeat silence past timeout   -> "sandbox timeout: heartbeat lost"
//   * total budget + grace exceeded    -> "sandbox timeout: deadline exceeded"
//   * spawn/exec failure               -> "sandbox spawn: ..."
//
// Dead sandboxes are NOT respawned inline — the next request routed to
// that slot respawns, gated by exponential backoff on consecutive
// failures, so a crash-looping binary cannot spin fork(). The fault spec
// forwarded per-frame (faults::currentSpec) keeps the deterministic
// fault-injection framework working across the process boundary: arming
// or resetting faults in the parent takes effect on the child's next
// request, never mid-flight.
//
//===----------------------------------------------------------------------===//

#ifndef TAWA_SERVE_SANDBOX_H
#define TAWA_SERVE_SANDBOX_H

#include "support/Subprocess.h"

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace tawa {
namespace serve {

/// Sandbox knobs, each with a TAWA_SANDBOX_* environment override
/// (docs/serving.md has the table).
struct SandboxConfig {
  /// Warm sandbox processes (concurrent out-of-process requests).
  /// TAWA_SANDBOX_POOL.
  int64_t Pool = 2;
  /// Child heartbeat period while a request executes.
  /// TAWA_SANDBOX_HEARTBEAT_MS.
  int64_t HeartbeatMs = 100;
  /// Silence past this is a hang: the child is SIGKILLed and the request
  /// fails SandboxTimeout. Also the grace the supervisor grants past the
  /// request's own deadline budget. TAWA_SANDBOX_HEARTBEAT_TIMEOUT_MS.
  int64_t HeartbeatTimeoutMs = 2000;
  /// Respawn backoff after K consecutive failures is
  /// min(BackoffBaseMs << (K-1), BackoffMaxMs). TAWA_SANDBOX_BACKOFF_MS /
  /// TAWA_SANDBOX_BACKOFF_MAX_MS.
  int64_t BackoffBaseMs = 10;
  int64_t BackoffMaxMs = 2000;
  /// rlimit caps applied to each child; 0 = off. The AS cap defaults off
  /// because sanitizer runtimes reserve terabytes of address space.
  /// TAWA_SANDBOX_RLIMIT_AS_MB / TAWA_SANDBOX_RLIMIT_CPU_S.
  int64_t RlimitAsMb = 0;
  int64_t RlimitCpuSec = 0;
  /// Runner binary; "" resolves to the sibling "tawa-sandbox" of
  /// /proc/self/exe (daemon and ctest both run out of the build dir).
  /// TAWA_SANDBOX_BIN.
  std::string Binary;

  static SandboxConfig fromEnv();
};

/// Monotonic counters, snapshot via Supervisor::stats().
struct SandboxStats {
  int64_t Spawns = 0;        ///< Successful child spawns (incl. respawns).
  int64_t SpawnFailures = 0; ///< Spawn attempts that failed.
  int64_t Requests = 0;      ///< Frames sent.
  int64_t Crashes = 0;       ///< Child deaths detected mid-request.
  int64_t Timeouts = 0;      ///< Heartbeat/deadline kills.
};

class Supervisor {
public:
  /// Called (outside the supervisor's locks) whenever a sandbox dies or
  /// times out: \p Reason is "sandbox-crash" | "sandbox-timeout", \p
  /// Detail the deterministic error string. The service hooks the flight
  /// recorder's dump here.
  using DeathHook = std::function<void(const std::string &Reason,
                                       const std::string &Detail)>;

  explicit Supervisor(SandboxConfig C = SandboxConfig::fromEnv());
  /// Kills and reaps every child.
  ~Supervisor();

  Supervisor(const Supervisor &) = delete;
  Supervisor &operator=(const Supervisor &) = delete;

  /// Executes one request line out of process (blocking; waits for a free
  /// slot when every sandbox is busy). Returns "" with \p RespLine the
  /// child's tawa-serve-resp-v1 answer, or the deterministic error string
  /// ("sandbox crash: ..." / "sandbox timeout: ..." / "sandbox spawn:
  /// ...").
  std::string execute(const std::string &RequestLine, int64_t RemainingMs,
                      std::string &RespLine);

  void setDeathHook(DeathHook H);
  SandboxStats stats() const;
  const SandboxConfig &config() const { return Cfg; }

  /// The pinned backoff policy: min(BaseMs << (K-1), MaxMs) for the K-th
  /// consecutive failure (K >= 1; 0 for K <= 0). Pure so tests pin the
  /// sequence without timing.
  static int64_t restartBackoffMs(int64_t ConsecFailures, int64_t BaseMs,
                                  int64_t MaxMs);

private:
  struct Slot {
    std::unique_ptr<Subprocess> Proc;
    std::string Buf; ///< Partial-line carry between reads.
    int64_t ConsecFails = 0;
    std::chrono::steady_clock::time_point NextSpawnAt{};
    bool Busy = false;
  };

  /// Runs one request on an acquired slot (only the owning thread touches
  /// it while Busy).
  std::string runSlot(Slot &S, const std::string &RequestLine,
                      int64_t RemainingMs, std::string &RespLine);
  std::string ensureChild(Slot &S);
  /// Reads one newline-terminated line from the slot's channel, waiting at
  /// most \p TimeoutMs. Returns 1 on a line, 0 on timeout, -1 on
  /// EOF/error.
  int readLine(Slot &S, int64_t TimeoutMs, std::string &Line);
  void noteFailure(Slot &S);
  void bumpStat(int64_t SandboxStats::*Field);

  SandboxConfig Cfg;
  DeathHook OnDeath;

  std::mutex Mu;
  std::condition_variable SlotCV;
  std::vector<Slot> Slots;

  mutable std::mutex StatsMu;
  SandboxStats Stats;
};

} // namespace serve
} // namespace tawa

#endif // TAWA_SERVE_SANDBOX_H
