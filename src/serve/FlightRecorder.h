//===- FlightRecorder.h - Black-box request flight recorder -----*- C++ -*-===//
//
// A bounded in-memory ring of the last N admitted requests, dumped to a
// crash-dump directory when a sandbox process dies or the daemon itself
// takes a fatal signal (docs/robustness.md). Every dump is a committable
// repro: `ir` requests carry the self-contained .tawa corpus text (module
// + fuzz.grid/fuzz.args launch attributes), so a crash artifact replays
// directly under `tawa-fuzz --replay` and round-trips through ir/Parser.
//
// Dump layout (<crash-dir>/dump-<n>-<reason>/):
//   MANIFEST.json   tawa-crash-dump-v1: reason, detail, entry index
//   req-<seq>.json  the raw request line, oldest to newest
//   req-<seq>.tawa  the corpus text (ir requests only)
//
// Daemon-fatal path: installFatalSignalDump() registers SIGSEGV/SIGABRT/
// SIGBUS/SIGILL/SIGFPE handlers that write the most recent request to
// <crash-dir>/daemon-fatal.json with raw write(2) calls on a buffer
// pre-rendered at record() time (async-signal constraints allow nothing
// more), then re-raise. Best-effort by design: a torn write loses the
// artifact, never the crash semantics.
//
//===----------------------------------------------------------------------===//

#ifndef TAWA_SERVE_FLIGHTRECORDER_H
#define TAWA_SERVE_FLIGHTRECORDER_H

#include "serve/Protocol.h"

#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

namespace tawa {
namespace serve {

class FlightRecorder {
public:
  struct Entry {
    int64_t Seq = 0;         ///< Monotonic admission sequence number.
    std::string Id;          ///< Request id (may be empty).
    std::string Kind;        ///< "ping" | "gemm" | "attention" | "ir".
    std::string RequestJson; ///< The raw request line, verbatim.
    std::string TawaText;    ///< Self-contained .tawa text (ir only).
  };

  /// \p Depth is the ring bound (clamped to >= 1); \p CrashDir "" disables
  /// dumping (record() still maintains the ring for snapshots).
  explicit FlightRecorder(int64_t Depth = 64, std::string CrashDir = "");

  /// Admits one parsed request into the ring (ping requests carry no
  /// repro value and are skipped).
  void record(const ServeRequest &Req, const std::string &RawLine);

  std::vector<Entry> snapshot() const;
  int64_t depth() const { return Depth; }
  const std::string &crashDir() const { return CrashDir; }
  /// Dumps written so far.
  int64_t dumps() const;

  /// Writes the ring to <crash-dir>/dump-<n>-<reason>/ (see file header).
  /// Returns the dump directory path, or "" when no crash dir is
  /// configured, the ring is empty, or the write failed.
  std::string dump(const std::string &Reason, const std::string &Detail);

  /// Registers fatal-signal handlers that write \p R's most recent
  /// request to <crash-dir>/daemon-fatal.json and re-raise. Process-wide;
  /// the daemon calls it once. No-op when \p R has no crash dir.
  static void installFatalSignalDump(FlightRecorder &R);

private:
  int64_t Depth;
  std::string CrashDir;

  mutable std::mutex Mu;
  std::deque<Entry> Ring;
  int64_t NextSeq = 1;
  int64_t DumpCount = 0;
};

} // namespace serve
} // namespace tawa

#endif // TAWA_SERVE_FLIGHTRECORDER_H
