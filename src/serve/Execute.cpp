//===- Execute.cpp - One serve-request execution attempt ------------------===//

#include "serve/Execute.h"

#include "driver/Runner.h"
#include "ir/Parser.h"
#include "sim/Diag.h"
#include "sim/Interpreter.h"
#include "sim/Replay.h"
#include "support/FaultInject.h"
#include "support/Support.h"

#include <chrono>
#include <cstdlib>
#include <memory>
#include <thread>
#include <variant>
#include <vector>

using namespace tawa;
using namespace tawa::serve;

namespace {

/// Minimal decoder for the fuzz corpus's launch attributes (fuzz.grid /
/// fuzz.args / fuzz.faults — the same grammar tests/fuzz/Gen.cpp encodes).
/// Lives here because the serving layer must not depend on test code.
struct IrLaunch {
  int64_t GridX = 1, GridY = 1;
  struct Arg {
    bool IsScalar = false;
    int64_t Scalar = 0;
    std::vector<int64_t> Shape;
    uint64_t FillSeed = 0;
    /// Explicit integer payload ('d' entries — grouped-GEMM offset tables).
    /// Non-empty marks the tensor as an input even when FillSeed == 0.
    std::vector<int64_t> Data;
  };
  std::vector<Arg> Args;
  std::string FaultSpec;
};

std::string decodeIrLaunch(const Module &M, IrLaunch &L) {
  const auto &Attrs = M.getAttrs();
  auto GridIt = Attrs.find("fuzz.grid");
  if (GridIt == Attrs.end())
    return "missing fuzz.grid module attribute";
  const auto *Grid = std::get_if<std::vector<int64_t>>(&GridIt->second);
  if (!Grid || Grid->size() != 2)
    return "fuzz.grid must be [gridX, gridY]";
  L.GridX = (*Grid)[0];
  L.GridY = (*Grid)[1];

  auto ArgsIt = Attrs.find("fuzz.args");
  if (ArgsIt == Attrs.end())
    return "missing fuzz.args module attribute";
  const auto *Spec = std::get_if<std::string>(&ArgsIt->second);
  if (!Spec)
    return "fuzz.args must be a string";
  size_t Pos = 0;
  while (Pos < Spec->size()) {
    size_t End = Spec->find(';', Pos);
    if (End == std::string::npos)
      End = Spec->size();
    std::string Tok = Spec->substr(Pos, End - Pos);
    Pos = End + 1;
    if (Tok.empty())
      return "empty fuzz.args entry";
    IrLaunch::Arg A;
    if (Tok[0] == 's') {
      A.IsScalar = true;
      A.Scalar = std::strtoll(Tok.c_str() + 1, nullptr, 10);
    } else if (Tok[0] == 't') {
      size_t Colon = Tok.find(':');
      if (Colon == std::string::npos)
        return "malformed tensor entry in fuzz.args: " + Tok;
      A.FillSeed =
          std::strtoull(Tok.substr(1, Colon - 1).c_str(), nullptr, 10);
      size_t P = Colon + 1;
      while (P < Tok.size()) {
        size_t X = Tok.find('x', P);
        if (X == std::string::npos)
          X = Tok.size();
        A.Shape.push_back(
            std::strtoll(Tok.substr(P, X - P).c_str(), nullptr, 10));
        P = X + 1;
      }
      if (A.Shape.empty())
        return "tensor entry with no shape in fuzz.args: " + Tok;
    } else if (Tok[0] == 'd') {
      size_t Colon = Tok.find(':');
      if (Colon == std::string::npos)
        return "malformed data entry in fuzz.args: " + Tok;
      size_t P = 1;
      while (P < Colon) {
        size_t X = Tok.find('x', P);
        if (X == std::string::npos || X > Colon)
          X = Colon;
        A.Shape.push_back(
            std::strtoll(Tok.substr(P, X - P).c_str(), nullptr, 10));
        P = X + 1;
      }
      P = Colon + 1;
      while (P < Tok.size()) {
        size_t Comma = Tok.find(',', P);
        if (Comma == std::string::npos)
          Comma = Tok.size();
        A.Data.push_back(
            std::strtoll(Tok.substr(P, Comma - P).c_str(), nullptr, 10));
        P = Comma + 1;
      }
      if (A.Shape.empty() || A.Data.empty())
        return "data entry with no shape or values in fuzz.args: " + Tok;
      int64_t Elems = 1;
      for (int64_t S : A.Shape)
        Elems *= S;
      if (Elems != static_cast<int64_t>(A.Data.size()))
        return "data entry shape/value count mismatch in fuzz.args: " + Tok;
    } else {
      return "unknown fuzz.args entry kind: " + Tok;
    }
    L.Args.push_back(std::move(A));
  }

  auto FaultsIt = Attrs.find("fuzz.faults");
  if (FaultsIt != Attrs.end()) {
    const auto *F = std::get_if<std::string>(&FaultsIt->second);
    if (!F)
      return "fuzz.faults must be a string";
    L.FaultSpec = *F;
  }
  return "";
}

std::string executeIr(const ServeRequest &Req, const ExecEnv &Env,
                      ServeResponse &Resp, ErrorKind &KindOut) {
  IrContext Ctx;
  std::string Err;
  std::unique_ptr<Module> Mod = parseModule(Ctx, Req.IrText, Err);
  if (!Mod) {
    KindOut = ErrorKind::CompileError;
    return "ir parse: " + Err;
  }
  IrLaunch Launch;
  if (std::string DErr = decodeIrLaunch(*Mod, Launch); !DErr.empty()) {
    KindOut = ErrorKind::CompileError;
    return "ir launch: " + DErr;
  }

  sim::GpuConfig Cfg;
  sim::RunOptions Opts;
  Opts.GridX = Launch.GridX;
  Opts.GridY = Launch.GridY;
  Opts.Functional = true;
  Opts.FuseBytecode = Env.Level < 1;
  Opts.NumWorkers = Env.Level >= 2 ? 1 : Env.ExecWorkers;
  Opts.MaxSteps = Req.MaxSteps > 0 ? Req.MaxSteps : Env.DefaultMaxSteps;
  Opts.MaxWallMs = Env.RemainingMs;
  sim::ExecDiagnostic Diag;
  Opts.Diag = &Diag;

  std::vector<sim::TensorRef> OutputTensors;
  for (const IrLaunch::Arg &A : Launch.Args) {
    if (A.IsScalar) {
      Opts.Args.push_back(sim::RuntimeArg::scalar(A.Scalar));
      continue;
    }
    auto T = std::make_shared<sim::TensorData>(A.Shape);
    if (!A.Data.empty()) {
      int64_t E = std::min<int64_t>(T->getNumElements(),
                                    static_cast<int64_t>(A.Data.size()));
      for (int64_t I = 0; I < E; ++I)
        T->at(I) = static_cast<float>(A.Data[I]);
    } else if (A.FillSeed != 0) {
      T->fillRandom(A.FillSeed, 1.0f);
    } else {
      OutputTensors.push_back(T);
    }
    Opts.Args.push_back(sim::RuntimeArg::tensor(T));
  }

  // A request-carried fault spec arms the PROCESS-wide injection sites
  // for the duration of this run (replay/debug affordance — matches the
  // fuzz harness). Left alone when empty so an externally armed spec
  // (chaos soak, TAWA_FAULTS) is not clobbered.
  if (!Launch.FaultSpec.empty()) {
    std::string FErr;
    if (!faults::configure(Launch.FaultSpec, &FErr)) {
      KindOut = ErrorKind::CompileError;
      return "ir faults: " + FErr;
    }
  }
  sim::Interpreter Interp(*Mod, Cfg);
  std::vector<sim::CtaTrace> Traces;
  std::string RunErr = Interp.runGrid(Opts, nullptr, &Traces);
  if (!Launch.FaultSpec.empty())
    faults::reset();

  if (!RunErr.empty()) {
    KindOut = classifyError(RunErr);
    if (!Diag.empty())
      Resp.DiagJson = Diag.renderJson();
    return RunErr;
  }

  Resp.HasIr = true;
  for (const sim::TensorRef &T : OutputTensors)
    Resp.Outputs.push_back(formatString(
        "%016llx", static_cast<unsigned long long>(fnv1a64(
                       T->data(), static_cast<size_t>(T->getNumElements()) *
                                      sizeof(float)))));
  std::vector<const sim::CtaTrace *> Ptrs;
  Ptrs.reserve(Traces.size());
  for (const sim::CtaTrace &T : Traces)
    Ptrs.push_back(&T);
  Resp.Cycles = sim::replaySmSchedule(Ptrs, Cfg, sim::ReplayParams()).Cycles;
  return "";
}

} // namespace

std::string tawa::serve::executeRequest(const ServeRequest &Req,
                                        const ExecEnv &Env,
                                        ServeResponse &Resp,
                                        ErrorKind &KindOut) {
  // Synthetic latency counts as execution time: inside the attempt, so a
  // sandboxed sleeper holds its request open (and is killable mid-flight —
  // the chaos drills depend on it).
  if (Req.SleepMs > 0)
    std::this_thread::sleep_for(std::chrono::milliseconds(Req.SleepMs));

  if (Req.K == ServeRequest::Kind::Ping)
    return "";

  if (Req.K == ServeRequest::Kind::Ir)
    return executeIr(Req, Env, Resp, KindOut);

  Runner R;
  R.FuseBytecode = Env.Level < 1;
  R.NumWorkers = Env.Level >= 2 ? 1 : Env.ExecWorkers;
  R.MaxSteps = Req.MaxSteps > 0 ? Req.MaxSteps : Env.DefaultMaxSteps;
  R.MaxWallMs = Env.RemainingMs;
  sim::ExecDiagnostic Diag;
  R.Diag = &Diag;

  RunResult Res = Req.K == ServeRequest::Kind::Gemm
                      ? R.runGemm(Req.F, Req.Gemm, Req.Functional)
                      : R.runAttention(Req.F, Req.Mha, Req.Functional);
  if (!Res.ok()) {
    KindOut = Res.Kind;
    if (!Diag.empty())
      Resp.DiagJson = Diag.renderJson();
    if (!Res.Error.empty())
      return Res.Error;
    KindOut = Res.Supported ? ErrorKind::Infeasible : ErrorKind::Unsupported;
    return Res.Supported ? "infeasible configuration"
                         : "unsupported configuration";
  }
  Resp.HasRun = true;
  Resp.Micros = Res.Micros;
  Resp.TFlops = Res.TFlops;
  Resp.MaxRelError = Res.MaxRelError;
  Resp.SmemBytes = Res.SmemBytes;
  Resp.RegsPerThread = Res.RegsPerThread;
  return "";
}
