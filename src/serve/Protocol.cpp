//===- Protocol.cpp - tawa-serve wire protocol ---------------------------------//

#include "serve/Protocol.h"

#include "support/Json.h"
#include "support/Support.h"

#include <cinttypes>
#include <limits>

using namespace tawa;
using namespace tawa::serve;

//===----------------------------------------------------------------------===//
// Framework wire names
//===----------------------------------------------------------------------===//

const char *tawa::serve::frameworkWireName(Framework F) {
  switch (F) {
  case Framework::Peak:
    return "peak";
  case Framework::CuBlas:
    return "cublas";
  case Framework::Tawa:
    return "tawa";
  case Framework::Triton:
    return "triton";
  case Framework::TritonNoPipe:
    return "triton-nopipe";
  case Framework::TileLang:
    return "tilelang";
  case Framework::ThunderKittens:
    return "thunderkittens";
  case Framework::FA3:
    return "fa3";
  }
  return "<unknown>";
}

bool tawa::serve::frameworkFromWireName(const std::string &Name,
                                        Framework &Out) {
  for (Framework F :
       {Framework::Peak, Framework::CuBlas, Framework::Tawa,
        Framework::Triton, Framework::TritonNoPipe, Framework::TileLang,
        Framework::ThunderKittens, Framework::FA3}) {
    if (Name == frameworkWireName(F)) {
      Out = F;
      return true;
    }
  }
  return false;
}

//===----------------------------------------------------------------------===//
// Request parsing
//===----------------------------------------------------------------------===//

namespace {

/// Shape guards: a poisoned request must not be able to ask for an
/// absurd allocation before the deadline machinery even starts.
constexpr int64_t MaxDim = 1 << 16;       ///< M/N/K, SeqLen, HeadDim.
constexpr int64_t MaxCount = 4096;        ///< Batch, Heads.
constexpr int64_t MaxDeadlineMs = 600000; ///< 10 minutes.
constexpr int64_t MaxSleepMs = 60000;

/// Reads an integer field with a [1, Cap] range check. Returns "" or the
/// rejection reason.
std::string intField(const JsonValue &V, const char *Key, int64_t Cap,
                     int64_t &Out) {
  std::string TypeErr;
  int64_t N = V.getInt(Key, Out, &TypeErr);
  if (!TypeErr.empty())
    return std::string("field '") + Key + "' must be an integer";
  if (N < 1 || N > Cap)
    return formatString("field '%s' out of range [1, %lld]", Key,
                        static_cast<long long>(Cap));
  Out = N;
  return "";
}

/// Non-negative variant for budgets (0 = server default).
std::string budgetField(const JsonValue &V, const char *Key, int64_t Cap,
                        int64_t &Out) {
  std::string TypeErr;
  int64_t N = V.getInt(Key, Out, &TypeErr);
  if (!TypeErr.empty())
    return std::string("field '") + Key + "' must be an integer";
  if (N < 0 || N > Cap)
    return formatString("field '%s' out of range [0, %lld]", Key,
                        static_cast<long long>(Cap));
  Out = N;
  return "";
}

} // namespace

std::string tawa::serve::parseRequest(const std::string &Text,
                                      ServeRequest &Out) {
  Out = ServeRequest();
  JsonValue V;
  std::string Err;
  if (!parseJson(Text, V, Err))
    return Err;
  if (!V.isObject())
    return "request must be a JSON object";

  std::string TypeErr;
  Out.Id = V.getString("id", "", &TypeErr);
  if (!TypeErr.empty())
    return "field 'id' must be a string";

  std::string Schema = V.getString("schema", "", &TypeErr);
  if (!TypeErr.empty() || Schema != "tawa-serve-req-v1")
    return "field 'schema' must be \"tawa-serve-req-v1\"";

  std::string Kind = V.getString("kind", "", &TypeErr);
  if (!TypeErr.empty())
    return "field 'kind' must be a string";
  if (Kind == "ping")
    Out.K = ServeRequest::Kind::Ping;
  else if (Kind == "gemm")
    Out.K = ServeRequest::Kind::Gemm;
  else if (Kind == "attention")
    Out.K = ServeRequest::Kind::Attention;
  else if (Kind == "ir")
    Out.K = ServeRequest::Kind::Ir;
  else
    return "field 'kind' must be one of ping|gemm|attention|ir";

  if (std::string E = budgetField(V, "deadline_ms", MaxDeadlineMs,
                                  Out.DeadlineMs);
      !E.empty())
    return E;
  {
    int64_t Steps = 0;
    std::string E = budgetField(V, "max_steps",
                                std::numeric_limits<int64_t>::max(), Steps);
    if (!E.empty())
      return E;
    Out.MaxSteps = Steps;
  }
  if (std::string E = budgetField(V, "sleep_ms", MaxSleepMs, Out.SleepMs);
      !E.empty())
    return E;
  Out.WaitGate = V.getBool("wait_gate", false, &TypeErr);
  if (!TypeErr.empty())
    return "field 'wait_gate' must be a boolean";
  Out.Sandbox = V.getBool("sandbox", false, &TypeErr);
  if (!TypeErr.empty())
    return "field 'sandbox' must be a boolean";
  Out.Functional = V.getBool("functional", false, &TypeErr);
  if (!TypeErr.empty())
    return "field 'functional' must be a boolean";

  if (Out.K == ServeRequest::Kind::Ping)
    return "";

  if (Out.K == ServeRequest::Kind::Ir) {
    Out.IrText = V.getString("ir", "", &TypeErr);
    if (!TypeErr.empty())
      return "field 'ir' must be a string";
    if (Out.IrText.empty())
      return "kind 'ir' requires a non-empty 'ir' field";
    return "";
  }

  std::string Fw = V.getString("framework", "tawa", &TypeErr);
  if (!TypeErr.empty())
    return "field 'framework' must be a string";
  if (!frameworkFromWireName(Fw, Out.F))
    return "unknown framework '" + Fw + "'";

  std::string Prec = V.getString("precision", "fp16", &TypeErr);
  if (!TypeErr.empty())
    return "field 'precision' must be a string";
  Precision P;
  if (Prec == "fp16")
    P = Precision::FP16;
  else if (Prec == "fp8")
    P = Precision::FP8;
  else
    return "field 'precision' must be fp16|fp8";

  if (Out.K == ServeRequest::Kind::Gemm) {
    // Service-sized defaults, not benchmark-sized: an unconstrained
    // request should not default to an 8192^3 functional run.
    Out.Gemm.M = Out.Gemm.N = 512;
    Out.Gemm.K = 256;
    Out.Gemm.Batch = 1;
    Out.Gemm.Prec = P;
    if (std::string E = intField(V, "m", MaxDim, Out.Gemm.M); !E.empty())
      return E;
    if (std::string E = intField(V, "n", MaxDim, Out.Gemm.N); !E.empty())
      return E;
    if (std::string E = intField(V, "k", MaxDim, Out.Gemm.K); !E.empty())
      return E;
    if (std::string E = intField(V, "batch", MaxCount, Out.Gemm.Batch);
        !E.empty())
      return E;
    return "";
  }

  Out.Mha.SeqLen = 512;
  Out.Mha.Batch = 1;
  Out.Mha.Heads = 1;
  Out.Mha.HeadDim = 128;
  Out.Mha.Prec = P;
  if (std::string E = intField(V, "seq_len", MaxDim, Out.Mha.SeqLen);
      !E.empty())
    return E;
  if (std::string E = intField(V, "batch", MaxCount, Out.Mha.Batch);
      !E.empty())
    return E;
  if (std::string E = intField(V, "heads", MaxCount, Out.Mha.Heads);
      !E.empty())
    return E;
  if (std::string E = intField(V, "head_dim", MaxDim, Out.Mha.HeadDim);
      !E.empty())
    return E;
  Out.Mha.Causal = V.getBool("causal", false, &TypeErr);
  if (!TypeErr.empty())
    return "field 'causal' must be a boolean";
  return "";
}

//===----------------------------------------------------------------------===//
// Response rendering
//===----------------------------------------------------------------------===//

namespace {

void appendCompact(std::string &Out, const JsonValue &V) {
  switch (V.kind()) {
  case JsonValue::Kind::Null:
    Out += "null";
    return;
  case JsonValue::Kind::Bool:
    Out += V.asBool() ? "true" : "false";
    return;
  case JsonValue::Kind::Int:
    Out += formatString("%lld", static_cast<long long>(V.asInt64()));
    return;
  case JsonValue::Kind::Double:
    Out += formatString("%.6f", V.asDouble());
    return;
  case JsonValue::Kind::String:
    Out += '"';
    Out += JsonWriter::escape(V.asString());
    Out += '"';
    return;
  case JsonValue::Kind::Array: {
    Out += '[';
    bool First = true;
    for (const JsonValue &E : V.elements()) {
      if (!First)
        Out += ',';
      First = false;
      appendCompact(Out, E);
    }
    Out += ']';
    return;
  }
  case JsonValue::Kind::Object: {
    Out += '{';
    bool First = true;
    for (const JsonValue::Member &M : V.members()) {
      if (!First)
        Out += ',';
      First = false;
      Out += '"';
      Out += JsonWriter::escape(M.first);
      Out += "\":";
      appendCompact(Out, M.second);
    }
    Out += '}';
    return;
  }
  }
}

void strField(std::string &Out, const char *Key, const std::string &V,
              bool &First) {
  if (!First)
    Out += ',';
  First = false;
  Out += '"';
  Out += Key;
  Out += "\":\"";
  Out += JsonWriter::escape(V);
  Out += '"';
}

void intFieldOut(std::string &Out, const char *Key, int64_t V, bool &First) {
  if (!First)
    Out += ',';
  First = false;
  Out += formatString("\"%s\":%lld", Key, static_cast<long long>(V));
}

void dblField(std::string &Out, const char *Key, double V, int Decimals,
              bool &First) {
  if (!First)
    Out += ',';
  First = false;
  Out += formatString("\"%s\":%.*f", Key, Decimals, V);
}

} // namespace

std::string ServeResponse::render() const {
  std::string Out = "{";
  bool First = true;
  strField(Out, "schema", "tawa-serve-resp-v1", First);
  strField(Out, "id", Id, First);
  const char *StName = St == Status::Ok         ? "ok"
                       : St == Status::Rejected ? "rejected"
                                                : "failed";
  strField(Out, "status", StName, First);
  if (!Reason.empty())
    strField(Out, "reason", Reason, First);
  if (!Error.empty())
    strField(Out, "error", Error, First);
  if (!ErrorKind.empty())
    strField(Out, "error_kind", ErrorKind, First);
  intFieldOut(Out, "attempts", Attempts, First);
  strField(Out, "degrade", Degrade, First);
  if (HasRun) {
    dblField(Out, "micros", Micros, 3, First);
    dblField(Out, "tflops", TFlops, 3, First);
    dblField(Out, "max_rel_error", MaxRelError, 6, First);
    intFieldOut(Out, "smem_bytes", SmemBytes, First);
    intFieldOut(Out, "regs_per_thread", RegsPerThread, First);
  }
  if (HasIr) {
    if (!First)
      Out += ',';
    First = false;
    Out += "\"outputs\":[";
    for (size_t I = 0; I < Outputs.size(); ++I) {
      if (I)
        Out += ',';
      Out += '"';
      Out += JsonWriter::escape(Outputs[I]);
      Out += '"';
    }
    Out += ']';
    if (Cycles >= 0)
      dblField(Out, "cycles", Cycles, 3, First);
  }
  if (!DiagJson.empty()) {
    // Re-emit the pretty tawa-diag-v1 document compactly; the parse
    // cannot fail on writer output, but a defensive fallback embeds
    // nothing rather than corrupting the frame.
    JsonValue D;
    std::string Err;
    if (parseJson(DiagJson, D, Err)) {
      if (!First)
        Out += ',';
      First = false;
      Out += "\"diag\":";
      appendCompact(Out, D);
    }
  }
  Out += '}';
  return Out;
}

//===----------------------------------------------------------------------===//
// Response parsing (sandbox supervisor side)
//===----------------------------------------------------------------------===//

std::string tawa::serve::parseResponse(const std::string &Text,
                                       ServeResponse &Out) {
  Out = ServeResponse();
  JsonValue V;
  std::string Err;
  if (!parseJson(Text, V, Err))
    return Err;
  if (!V.isObject())
    return "response must be a JSON object";

  std::string TypeErr;
  std::string Schema = V.getString("schema", "", &TypeErr);
  if (!TypeErr.empty() || Schema != "tawa-serve-resp-v1")
    return "field 'schema' must be \"tawa-serve-resp-v1\"";
  Out.Id = V.getString("id", "", &TypeErr);
  if (!TypeErr.empty())
    return "field 'id' must be a string";

  std::string St = V.getString("status", "", &TypeErr);
  if (St == "ok")
    Out.St = ServeResponse::Status::Ok;
  else if (St == "rejected")
    Out.St = ServeResponse::Status::Rejected;
  else if (St == "failed")
    Out.St = ServeResponse::Status::Failed;
  else
    return "field 'status' must be ok|rejected|failed";

  Out.Reason = V.getString("reason", "", &TypeErr);
  Out.Error = V.getString("error", "", &TypeErr);
  Out.ErrorKind = V.getString("error_kind", "", &TypeErr);
  Out.Attempts = V.getInt("attempts", 0, &TypeErr);
  Out.Degrade = V.getString("degrade", "fused", &TypeErr);
  if (!TypeErr.empty())
    return "field '" + TypeErr + "' has the wrong type";

  if (const JsonValue *M = V.find("micros"); M && M->isNumber()) {
    Out.HasRun = true;
    Out.Micros = M->asDouble();
    if (const JsonValue *F = V.find("tflops"); F && F->isNumber())
      Out.TFlops = F->asDouble();
    if (const JsonValue *E = V.find("max_rel_error"); E && E->isNumber())
      Out.MaxRelError = E->asDouble();
    Out.SmemBytes = V.getInt("smem_bytes", 0, nullptr);
    Out.RegsPerThread = V.getInt("regs_per_thread", 0, nullptr);
  }
  if (const JsonValue *O = V.find("outputs"); O && O->isArray()) {
    Out.HasIr = true;
    for (const JsonValue &E : O->elements()) {
      if (!E.isString())
        return "field 'outputs' must be an array of strings";
      Out.Outputs.push_back(E.asString());
    }
    if (const JsonValue *Cy = V.find("cycles"); Cy && Cy->isNumber())
      Out.Cycles = Cy->asDouble();
  }
  if (const JsonValue *D = V.find("diag"); D && D->isObject()) {
    std::string Compact;
    appendCompact(Compact, *D);
    Out.DiagJson = Compact;
  }
  return "";
}
