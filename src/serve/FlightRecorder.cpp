//===- FlightRecorder.cpp - Black-box request flight recorder -------------===//

#include "serve/FlightRecorder.h"

#include "support/Json.h"
#include "support/Support.h"

#include <algorithm>
#include <cerrno>
#include <csignal>
#include <cstring>
#include <fstream>

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

using namespace tawa;
using namespace tawa::serve;

namespace {

const char *requestKindName(ServeRequest::Kind K) {
  switch (K) {
  case ServeRequest::Kind::Ping:
    return "ping";
  case ServeRequest::Kind::Gemm:
    return "gemm";
  case ServeRequest::Kind::Attention:
    return "attention";
  case ServeRequest::Kind::Ir:
    return "ir";
  }
  return "?";
}

} // namespace

FlightRecorder::FlightRecorder(int64_t Depth, std::string CrashDir)
    : Depth(std::max<int64_t>(1, Depth)), CrashDir(std::move(CrashDir)) {}

//===----------------------------------------------------------------------===//
// Fatal-signal last-request buffer
//===----------------------------------------------------------------------===//

namespace {

// Pre-rendered at record() time so the signal handler only open()s and
// write()s. Reads from the handler race writes from record() — torn
// output is acceptable for a best-effort black box.
constexpr size_t FatalBufCap = 1u << 20;
char FatalBuf[FatalBufCap];
volatile size_t FatalLen = 0;
char FatalPath[4096];
FlightRecorder *FatalRecorder = nullptr;

void fatalHandler(int Sig) {
  if (FatalPath[0] && FatalLen > 0) {
    int Fd = ::open(FatalPath, O_CREAT | O_WRONLY | O_TRUNC, 0644);
    if (Fd >= 0) {
      size_t Len = FatalLen;
      if (Len > FatalBufCap)
        Len = FatalBufCap;
      size_t Off = 0;
      while (Off < Len) {
        ssize_t N = ::write(Fd, FatalBuf + Off, Len - Off);
        if (N <= 0)
          break;
        Off += static_cast<size_t>(N);
      }
      ::close(Fd);
    }
  }
  // SA_RESETHAND restored the default action; re-deliver for the real
  // crash semantics (core, wait status).
  ::raise(Sig);
}

} // namespace

void FlightRecorder::installFatalSignalDump(FlightRecorder &R) {
  if (R.CrashDir.empty())
    return;
  std::string Path = R.CrashDir + "/daemon-fatal.json";
  if (Path.size() >= sizeof(FatalPath))
    return;
  ::mkdir(R.CrashDir.c_str(), 0755);
  std::memcpy(FatalPath, Path.c_str(), Path.size() + 1);
  FatalRecorder = &R;
  struct sigaction SA;
  std::memset(&SA, 0, sizeof(SA));
  SA.sa_handler = fatalHandler;
  SA.sa_flags = SA_RESETHAND | SA_NODEFER;
  sigemptyset(&SA.sa_mask);
  for (int Sig : {SIGSEGV, SIGABRT, SIGBUS, SIGILL, SIGFPE})
    ::sigaction(Sig, &SA, nullptr);
}

//===----------------------------------------------------------------------===//
// Ring
//===----------------------------------------------------------------------===//

void FlightRecorder::record(const ServeRequest &Req,
                            const std::string &RawLine) {
  if (Req.K == ServeRequest::Kind::Ping)
    return;
  std::lock_guard<std::mutex> L(Mu);
  Entry E;
  E.Seq = NextSeq++;
  E.Id = Req.Id;
  E.Kind = requestKindName(Req.K);
  E.RequestJson = RawLine;
  if (Req.K == ServeRequest::Kind::Ir)
    E.TawaText = Req.IrText;
  Ring.push_back(std::move(E));
  while (static_cast<int64_t>(Ring.size()) > Depth)
    Ring.pop_front();
  // Refresh the fatal-signal buffer with the newest request (only when
  // this recorder is the installed one — tests run many recorders).
  if (FatalRecorder == this) {
    const Entry &Newest = Ring.back();
    size_t Len = std::min(Newest.RequestJson.size(), FatalBufCap - 1);
    std::memcpy(FatalBuf, Newest.RequestJson.data(), Len);
    FatalBuf[Len] = '\n';
    FatalLen = Len + 1;
  }
}

std::vector<FlightRecorder::Entry> FlightRecorder::snapshot() const {
  std::lock_guard<std::mutex> L(Mu);
  return std::vector<Entry>(Ring.begin(), Ring.end());
}

int64_t FlightRecorder::dumps() const {
  std::lock_guard<std::mutex> L(Mu);
  return DumpCount;
}

std::string FlightRecorder::dump(const std::string &Reason,
                                 const std::string &Detail) {
  if (CrashDir.empty())
    return "";
  std::vector<Entry> Entries;
  int64_t N;
  {
    std::lock_guard<std::mutex> L(Mu);
    if (Ring.empty())
      return "";
    Entries.assign(Ring.begin(), Ring.end());
    N = ++DumpCount;
  }

  ::mkdir(CrashDir.c_str(), 0755);
  std::string Dir =
      formatString("%s/dump-%lld-%s", CrashDir.c_str(),
                   static_cast<long long>(N), Reason.c_str());
  if (::mkdir(Dir.c_str(), 0755) < 0 && errno != EEXIST)
    return "";

  JsonWriter W;
  W.beginObject();
  W.field("schema", "tawa-crash-dump-v1");
  W.field("reason", Reason);
  W.field("detail", Detail);
  W.field("entries", static_cast<int64_t>(Entries.size()));
  W.key("requests").beginArray();
  for (const Entry &E : Entries) {
    W.beginObject();
    W.field("seq", E.Seq);
    W.field("id", E.Id);
    W.field("kind", E.Kind);
    W.field("request",
            formatString("req-%lld.json", static_cast<long long>(E.Seq)));
    if (!E.TawaText.empty())
      W.field("tawa",
              formatString("req-%lld.tawa", static_cast<long long>(E.Seq)));
    W.endObject();
  }
  W.endArray();
  W.endObject();

  {
    std::ofstream Out(Dir + "/MANIFEST.json");
    if (!Out)
      return "";
    Out << W.str();
  }
  for (const Entry &E : Entries) {
    std::ofstream Req(Dir + formatString("/req-%lld.json",
                                         static_cast<long long>(E.Seq)));
    Req << E.RequestJson << "\n";
    if (!E.TawaText.empty()) {
      std::ofstream Tawa(Dir + formatString("/req-%lld.tawa",
                                            static_cast<long long>(E.Seq)));
      Tawa << E.TawaText;
    }
  }
  return Dir;
}
