//===- Execute.h - One serve-request execution attempt ----------*- C++ -*-===//
//
// The transport- and policy-free execution core shared by the in-process
// service (serve/Server) and the out-of-process sandbox runner
// (tools/tawa_sandbox.cpp): given a parsed ServeRequest and the attempt
// parameters the policy layer decided (ladder level, remaining deadline
// budget, defaults), run it once through Runner / Interpreter and fill the
// response's result fields. No retries, no ladder bookkeeping, no breaker —
// exactly one attempt, so the parent and the sandbox execute requests
// identically and the differential serve tests hold across the process
// boundary.
//
//===----------------------------------------------------------------------===//

#ifndef TAWA_SERVE_EXECUTE_H
#define TAWA_SERVE_EXECUTE_H

#include "serve/Protocol.h"
#include "support/Status.h"

#include <cstdint>
#include <string>

namespace tawa {
namespace serve {

/// Attempt parameters decided by the policy layer (Service) or the
/// sandbox frame (tawa-sandbox).
struct ExecEnv {
  /// Degradation-ladder level: 0 fused, 1 unfused, >= 2 serial grid.
  /// (Level 3 "sandbox" never reaches this layer — the supervisor routes
  /// it out of process, where the child runs at level 0.)
  int Level = 0;
  /// Remaining deadline budget in ms; arms Runner/RunOptions::MaxWallMs.
  int64_t RemainingMs = 0;
  /// Step budget applied when the request names none.
  int64_t DefaultMaxSteps = 1000000;
  /// Workers per simulation; 0 = hardware.
  int64_t ExecWorkers = 0;
};

/// Executes \p Req once. Returns "" with \p Resp's result fields filled,
/// or the deterministic error string with \p KindOut its classification
/// (ErrorKind::None means: classify the string). Honors the request's
/// sleep_ms test hook (synthetic latency happens *inside* the attempt, so
/// a sandboxed sleeper is killable mid-request).
std::string executeRequest(const ServeRequest &Req, const ExecEnv &Env,
                           ServeResponse &Resp, ErrorKind &KindOut);

} // namespace serve
} // namespace tawa

#endif // TAWA_SERVE_EXECUTE_H
