//===- Server.cpp - Resilient simulation service -------------------------------//
//
// Policy layering for one request (docs/serving.md):
//
//   admission (bounded queue, shed on overflow)
//     -> deadline (queue wait counts; remaining budget arms MaxWallMs)
//       -> attempt loop (retry transient ErrorKinds with backoff+jitter)
//         -> degradation ladder (per compile key: fused -> unfused -> serial)
//           -> circuit breaker (cache disk failures -> memory-only)
//             -> execution (Runner / Interpreter with guardrails + Diag)
//
// Every decision increments exactly one ServeStats counter and every
// request — poisoned, shed, crashed, expired — produces exactly one
// structured response line.
//
//===----------------------------------------------------------------------===//

#include "serve/Server.h"

#include "driver/Runner.h"
#include "serve/Execute.h"
#include "support/Env.h"
#include "support/FaultInject.h"
#include "support/ProgramCache.h"
#include "support/Status.h"
#include "support/Support.h"
#include "support/WorkerPool.h"

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <memory>

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace tawa;
using namespace tawa::serve;
using Clock = std::chrono::steady_clock;

//===----------------------------------------------------------------------===//
// Config
//===----------------------------------------------------------------------===//

ServeConfig ServeConfig::fromEnv() {
  ServeConfig C;
  C.Workers = envInt64("TAWA_SERVE_WORKERS", C.Workers);
  C.QueueDepth = envInt64("TAWA_SERVE_QUEUE_DEPTH", C.QueueDepth);
  C.MaxRetries = envInt64("TAWA_SERVE_RETRIES", C.MaxRetries);
  C.BackoffBaseMs = envInt64("TAWA_SERVE_BACKOFF_MS", C.BackoffBaseMs);
  C.BackoffMaxMs = envInt64("TAWA_SERVE_BACKOFF_MAX_MS", C.BackoffMaxMs);
  C.DegradeThreshold =
      envInt64("TAWA_SERVE_DEGRADE_FAILURES", C.DegradeThreshold);
  C.BreakerThreshold =
      envInt64("TAWA_SERVE_BREAKER_FAILURES", C.BreakerThreshold);
  C.BreakerCooldownMs =
      envInt64("TAWA_SERVE_BREAKER_COOLDOWN_MS", C.BreakerCooldownMs);
  C.DefaultDeadlineMs = envInt64("TAWA_SERVE_DEADLINE_MS", C.DefaultDeadlineMs);
  C.DefaultMaxSteps = envInt64("TAWA_SERVE_MAX_STEPS", C.DefaultMaxSteps);
  C.ExecWorkers = envInt64("TAWA_SERVE_EXEC_WORKERS", C.ExecWorkers);
  C.FlightRecorderDepth =
      envInt64("TAWA_SERVE_FLIGHT_RECORDER", C.FlightRecorderDepth);
  C.CrashDumpDir = envString("TAWA_SERVE_CRASH_DIR", C.CrashDumpDir);
  C.Sandbox = SandboxConfig::fromEnv();
  return C;
}

//===----------------------------------------------------------------------===//
// Service lifecycle
//===----------------------------------------------------------------------===//

Service::Service(ServeConfig C)
    : Cfg(C), Recorder(C.FlightRecorderDepth, C.CrashDumpDir) {
  if (Cfg.Workers <= 0)
    Cfg.Workers = std::max<int64_t>(
        1, WorkerPool::shared().getNumWorkers() / 2);
  Cfg.QueueDepth = std::max<int64_t>(1, Cfg.QueueDepth);
  Cfg.MaxRetries = std::max<int64_t>(0, Cfg.MaxRetries);
  Cfg.DegradeThreshold = std::max<int64_t>(1, Cfg.DegradeThreshold);
  Cfg.BreakerThreshold = std::max<int64_t>(1, Cfg.BreakerThreshold);
  // Baseline the breaker on the cache's current disk-failure count so
  // failures from before this service existed are not evidence.
  {
    ProgramCache::Stats S = ProgramCache::shared().getStats();
    Breaker.LastDiskFailures = S.DiskReadFailures + S.DiskWriteFailures;
  }
  for (int64_t I = 0; I < Cfg.Workers; ++I)
    Executors.emplace_back([this] { executorLoop(); });
}

Service::~Service() { shutdown(); }

void Service::beginShutdown() {
  {
    std::lock_guard<std::mutex> L(QMu);
    Stopping = true;
  }
  QueueCV.notify_all();
}

void Service::drain() {
  std::unique_lock<std::mutex> L(QMu);
  IdleCV.wait(L, [&] { return Queue.empty() && InflightNow.load() == 0; });
}

void Service::shutdown() {
  beginShutdown();
  drain();
  {
    std::lock_guard<std::mutex> L(QMu);
    if (Joined)
      return;
    Joined = true;
  }
  for (std::thread &T : Executors)
    T.join();
  // No executor is running: kill and reap the warm sandbox pool. Fold
  // its spawn count into the service stats first so a post-shutdown
  // stats() (the daemon's exit summary) still reports it.
  std::lock_guard<std::mutex> L(SupMu);
  if (Sup) {
    std::lock_guard<std::mutex> SL(StatsMu);
    Stats.SandboxSpawns = Sup->stats().Spawns;
  }
  Sup.reset();
}

void Service::closeGate() {
  std::lock_guard<std::mutex> L(GateMu);
  GateOpen = false;
}

void Service::openGate() {
  {
    std::lock_guard<std::mutex> L(GateMu);
    GateOpen = true;
  }
  GateCV.notify_all();
}

ServeStats Service::stats() const {
  ServeStats S;
  {
    std::lock_guard<std::mutex> L(StatsMu);
    S = Stats;
  }
  {
    std::lock_guard<std::mutex> L(SupMu);
    if (Sup)
      S.SandboxSpawns = Sup->stats().Spawns;
  }
  S.CrashDumps = Recorder.dumps();
  return S;
}

//===----------------------------------------------------------------------===//
// Admission
//===----------------------------------------------------------------------===//

void Service::submit(std::string RequestText,
                     std::function<void(std::string)> Done) {
  enum class Verdict { Accepted, Overloaded, ShuttingDown };
  Verdict V;
  {
    std::lock_guard<std::mutex> L(QMu);
    if (Stopping) {
      V = Verdict::ShuttingDown;
    } else if (static_cast<int64_t>(Queue.size()) >= Cfg.QueueDepth) {
      V = Verdict::Overloaded;
    } else {
      V = Verdict::Accepted;
      Job J;
      J.Text = std::move(RequestText);
      J.Done = std::move(Done);
      J.Enqueued = Clock::now();
      Queue.push_back(std::move(J));
      QueueNow.fetch_add(1);
      std::lock_guard<std::mutex> SL(StatsMu);
      ++Stats.Accepted;
    }
  }
  if (V == Verdict::Accepted) {
    QueueCV.notify_one();
    return;
  }
  // Shed path: never executes, but still answers with the request's id
  // (best effort — a request too malformed to parse sheds with id "").
  ServeRequest Req;
  parseRequest(RequestText, Req);
  ServeResponse Resp;
  Resp.Id = Req.Id;
  Resp.St = ServeResponse::Status::Rejected;
  Resp.Reason = V == Verdict::Overloaded ? "overloaded" : "shutting-down";
  {
    std::lock_guard<std::mutex> L(StatsMu);
    if (V == Verdict::Overloaded)
      ++Stats.RejectedOverload;
    else
      ++Stats.RejectedShutdown;
  }
  Done(Resp.render());
}

std::string Service::call(const std::string &RequestText) {
  std::mutex Mu;
  std::condition_variable CV;
  bool Ready = false;
  std::string Out;
  submit(RequestText, [&](std::string R) {
    std::lock_guard<std::mutex> L(Mu);
    Out = std::move(R);
    Ready = true;
    CV.notify_one();
  });
  std::unique_lock<std::mutex> L(Mu);
  CV.wait(L, [&] { return Ready; });
  return Out;
}

void Service::executorLoop() {
  for (;;) {
    Job J;
    {
      std::unique_lock<std::mutex> L(QMu);
      QueueCV.wait(L, [&] { return Stopping || !Queue.empty(); });
      if (Queue.empty()) {
        if (Stopping)
          return;
        continue;
      }
      // Shutdown drains: accepted requests run even after Stopping.
      J = std::move(Queue.front());
      Queue.pop_front();
      QueueNow.fetch_sub(1);
      InflightNow.fetch_add(1);
    }
    std::string Resp = process(J);
    // The response callback runs before the request stops counting as
    // in-flight, so drain() returning means every answer was delivered
    // (the socket layer writes inside Done).
    J.Done(std::move(Resp));
    {
      std::lock_guard<std::mutex> L(QMu);
      InflightNow.fetch_sub(1);
    }
    IdleCV.notify_all();
  }
}

//===----------------------------------------------------------------------===//
// Request processing: deadline -> retry -> ladder -> breaker -> execute
//===----------------------------------------------------------------------===//

int Service::ladderLevel(const std::string &Key) {
  if (Key.empty())
    return 0;
  std::lock_guard<std::mutex> L(LadderMu);
  return Ladder[Key].Level;
}

void Service::recordCrash(const std::string &Key) {
  if (Key.empty())
    return;
  bool Stepped = false;
  {
    std::lock_guard<std::mutex> L(LadderMu);
    LadderState &S = Ladder[Key];
    if (S.Level >= 3)
      return; // Already at the floor (out-of-process sandbox).
    if (++S.FailsAtLevel >= Cfg.DegradeThreshold) {
      ++S.Level;
      S.FailsAtLevel = 0;
      Stepped = true;
    }
  }
  if (Stepped) {
    std::lock_guard<std::mutex> L(StatsMu);
    ++Stats.DegradeSteps;
  }
}

void Service::breakerBeforeAttempt() {
  std::lock_guard<std::mutex> L(BreakerMu);
  if (Breaker.State != BreakerState::St::Open)
    return;
  auto Elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                     Clock::now() - Breaker.OpenedAt)
                     .count();
  if (Elapsed < Cfg.BreakerCooldownMs)
    return;
  // Half-open probe: restore the disk layer; the next attempt's failure
  // delta decides whether it stays.
  ProgramCache::shared().setPersistDir(Breaker.SavedDir);
  Breaker.State = BreakerState::St::HalfOpen;
  std::lock_guard<std::mutex> SL(StatsMu);
  ++Stats.BreakerProbes;
}

void Service::breakerAfterAttempt() {
  std::lock_guard<std::mutex> L(BreakerMu);
  ProgramCache::Stats S = ProgramCache::shared().getStats();
  uint64_t Total = S.DiskReadFailures + S.DiskWriteFailures;
  uint64_t Delta = Total - Breaker.LastDiskFailures;
  Breaker.LastDiskFailures = Total;
  switch (Breaker.State) {
  case BreakerState::St::Closed: {
    Breaker.Accum += static_cast<int64_t>(Delta);
    if (Breaker.Accum < Cfg.BreakerThreshold)
      return;
    Breaker.Accum = 0;
    Breaker.SavedDir = ProgramCache::shared().getPersistDir();
    if (Breaker.SavedDir.empty())
      return; // No disk layer configured; nothing to shed.
    ProgramCache::shared().setPersistDir("");
    Breaker.State = BreakerState::St::Open;
    Breaker.OpenedAt = Clock::now();
    std::lock_guard<std::mutex> SL(StatsMu);
    ++Stats.BreakerTrips;
    return;
  }
  case BreakerState::St::HalfOpen: {
    if (Delta > 0) {
      // Probe failed: shed the disk layer again and restart the cooldown.
      ProgramCache::shared().setPersistDir("");
      Breaker.State = BreakerState::St::Open;
      Breaker.OpenedAt = Clock::now();
      std::lock_guard<std::mutex> SL(StatsMu);
      ++Stats.BreakerTrips;
    } else {
      Breaker.State = BreakerState::St::Closed;
      Breaker.Accum = 0;
      std::lock_guard<std::mutex> SL(StatsMu);
      ++Stats.BreakerCloses;
    }
    return;
  }
  case BreakerState::St::Open:
    return; // Disk layer off: no new evidence accumulates.
  }
}

std::string Service::requestKey(const ServeRequest &Req) const {
  switch (Req.K) {
  case ServeRequest::Kind::Ping:
    return "";
  case ServeRequest::Kind::Gemm: {
    Runner R;
    return R.compileKey(Req.Gemm, getGemmEnvelope(Req.F, Req.Gemm));
  }
  case ServeRequest::Kind::Attention: {
    Runner R;
    return R.compileKey(Req.Mha, getAttentionEnvelope(Req.F, Req.Mha));
  }
  case ServeRequest::Kind::Ir:
    return formatString("ir|%016llx",
                        static_cast<unsigned long long>(
                            fnv1a64(Req.IrText)));
  }
  return "";
}

namespace {

const char *degradeName(int Level) {
  return Level == 0   ? "fused"
         : Level == 1 ? "unfused"
         : Level == 2 ? "serial"
                      : "sandbox";
}

bool isTransient(ErrorKind K) {
  // Kinds worth retrying: another attempt can genuinely turn out
  // differently (a crashed worker, a torn disk read, a corrupt cached
  // program that recompiles, a sandbox that gets respawned). Deterministic
  // kinds — deadlock, budget trips, verifier and compile failures — fail
  // fast; retrying them replays the same outcome with interest. Sandbox
  // timeouts also fail fast: the request already consumed its deadline
  // budget plus the heartbeat grace.
  return K == ErrorKind::WorkerCrash || K == ErrorKind::CacheIo ||
         K == ErrorKind::CorruptProgram || K == ErrorKind::SandboxCrash;
}

bool countsTowardLadder(ErrorKind K) {
  // Sandbox kinds deliberately do NOT step the ladder: the sandbox IS the
  // last rung, and its own failures are containment working, not evidence
  // the engine needs a safer mode.
  return K == ErrorKind::WorkerCrash || K == ErrorKind::Internal;
}

} // namespace

std::string Service::process(const Job &J) {
  ServeRequest Req;
  std::string ParseErr = parseRequest(J.Text, Req);
  ServeResponse Resp;
  Resp.Id = Req.Id;
  if (!ParseErr.empty()) {
    Resp.St = ServeResponse::Status::Rejected;
    Resp.Reason = "bad-request";
    Resp.Error = ParseErr;
    std::lock_guard<std::mutex> L(StatsMu);
    ++Stats.BadRequests;
    return Resp.render();
  }

  // Black box: the ring holds every admitted request (synthetic-latency
  // sleeps happen inside the execution attempt, serve/Execute.cpp).
  Recorder.record(Req, J.Text);

  if (Req.WaitGate) {
    std::unique_lock<std::mutex> G(GateMu);
    GateCV.wait(G, [&] { return GateOpen; });
  }

  // A sandbox-routed ping exercises the full out-of-process path (the
  // cheapest end-to-end sandbox probe); only the plain ping is inlined.
  if (Req.K == ServeRequest::Kind::Ping && !Req.Sandbox) {
    Resp.St = ServeResponse::Status::Ok;
    std::lock_guard<std::mutex> L(StatsMu);
    ++Stats.Succeeded;
    return Resp.render();
  }

  int64_t DeadlineMs =
      Req.DeadlineMs > 0 ? Req.DeadlineMs : Cfg.DefaultDeadlineMs;
  Clock::time_point DeadlineAt =
      J.Enqueued + std::chrono::milliseconds(DeadlineMs);
  auto remainingMs = [&] {
    return std::chrono::duration_cast<std::chrono::milliseconds>(
               DeadlineAt - Clock::now())
        .count();
  };

  std::string Key = requestKey(Req);
  int64_t Attempt = 0;
  for (;;) {
    ++Attempt;
    int64_t Rem = remainingMs();
    if (Rem <= 0) {
      // Deterministic message: no elapsed-time numbers, so identical
      // overload scenarios produce identical response lines.
      Resp = ServeResponse();
      Resp.Id = Req.Id;
      Resp.St = ServeResponse::Status::Failed;
      Resp.Attempts = Attempt - 1;
      Resp.Error = Attempt == 1 ? "deadline expired before execution"
                                : "deadline expired during retries";
      Resp.ErrorKind = errorKindName(ErrorKind::WallClock);
      std::lock_guard<std::mutex> L(StatsMu);
      ++Stats.Failed;
      if (Attempt == 1)
        ++Stats.DeadlineQueueExpired;
      return Resp.render();
    }

    breakerBeforeAttempt();
    int Level = ladderLevel(Key);
    Resp = ServeResponse();
    Resp.Id = Req.Id;
    Resp.Attempts = Attempt;
    Resp.Degrade = degradeName(Level);
    ErrorKind Kind = ErrorKind::None;
    std::string Err = executeOnce(J.Text, Req, Level, Rem, Resp, Kind);
    breakerAfterAttempt();

    if (Err.empty()) {
      Resp.St = ServeResponse::Status::Ok;
      std::lock_guard<std::mutex> L(StatsMu);
      ++Stats.Succeeded;
      return Resp.render();
    }

    if (Kind == ErrorKind::None)
      Kind = classifyError(Err);
    if (countsTowardLadder(Kind))
      recordCrash(Key);
    if (isTransient(Kind) && Attempt <= Cfg.MaxRetries) {
      {
        std::lock_guard<std::mutex> L(StatsMu);
        ++Stats.Retries;
      }
      int64_t Shift = std::min<int64_t>(Attempt - 1, 20);
      int64_t Back = std::min(Cfg.BackoffMaxMs, Cfg.BackoffBaseMs << Shift);
      // Deterministic jitter: keyed by (id, attempt), not a clock, so a
      // replayed trace backs off identically.
      int64_t Jitter =
          Cfg.BackoffBaseMs > 0
              ? static_cast<int64_t>(
                    fnv1a64(Req.Id + "#" + std::to_string(Attempt)) %
                    static_cast<uint64_t>(Cfg.BackoffBaseMs))
              : 0;
      int64_t Sleep = std::min(Back + Jitter, std::max<int64_t>(
                                                  0, remainingMs()));
      if (Sleep > 0)
        std::this_thread::sleep_for(std::chrono::milliseconds(Sleep));
      continue;
    }

    Resp.St = ServeResponse::Status::Failed;
    Resp.Error = Err;
    Resp.ErrorKind = errorKindName(Kind);
    std::lock_guard<std::mutex> L(StatsMu);
    ++Stats.Failed;
    return Resp.render();
  }
}

//===----------------------------------------------------------------------===//
// Execution
//===----------------------------------------------------------------------===//

std::string Service::executeOnce(const std::string &RawText,
                                 const ServeRequest &Req, int Level,
                                 int64_t RemainingMs, ServeResponse &Resp,
                                 ErrorKind &KindOut) {
  // Out-of-process routing: either the request opted in (sandbox=true) or
  // the ladder escalated its compile key to the last rung.
  if (Req.Sandbox || Level >= 3)
    return executeSandbox(RawText, RemainingMs, Resp, KindOut);

  ExecEnv Env;
  Env.Level = Level;
  Env.RemainingMs = RemainingMs;
  Env.DefaultMaxSteps = Cfg.DefaultMaxSteps;
  Env.ExecWorkers = Cfg.ExecWorkers;
  return serve::executeRequest(Req, Env, Resp, KindOut);
}

Supervisor &Service::supervisor() {
  std::lock_guard<std::mutex> L(SupMu);
  if (!Sup) {
    Sup = std::make_unique<Supervisor>(Cfg.Sandbox);
    // Every sandbox death or timeout flushes the black box (no-op when no
    // crash dir is configured — the ring still holds the history).
    Sup->setDeathHook([this](const std::string &Reason,
                             const std::string &Detail) {
      Recorder.dump(Reason, Detail);
    });
  }
  return *Sup;
}

std::string Service::executeSandbox(const std::string &RawText,
                                    int64_t RemainingMs, ServeResponse &Resp,
                                    ErrorKind &KindOut) {
  // Even a failed attempt reports where it ran.
  Resp.Degrade = "sandbox";
  {
    std::lock_guard<std::mutex> L(StatsMu);
    ++Stats.SandboxRequests;
  }

  std::string RespLine;
  std::string Err = supervisor().execute(RawText, RemainingMs, RespLine);
  if (!Err.empty()) {
    KindOut = classifyError(Err);
    std::lock_guard<std::mutex> L(StatsMu);
    if (KindOut == ErrorKind::SandboxTimeout)
      ++Stats.SandboxTimeouts;
    else
      ++Stats.SandboxCrashes;
    return Err;
  }

  ServeResponse Child;
  if (std::string PErr = parseResponse(RespLine, Child); !PErr.empty()) {
    KindOut = ErrorKind::SandboxCrash;
    std::lock_guard<std::mutex> L(StatsMu);
    ++Stats.SandboxCrashes;
    return "sandbox crash: malformed response: " + PErr;
  }

  if (Child.St == ServeResponse::Status::Failed) {
    // The child's error flows back verbatim; its kind rides the error_kind
    // field so WorkerCrash inside the sandbox still classifies (and steps
    // the ladder) exactly like an in-process one.
    KindOut = ErrorKind::Internal;
    errorKindFromName(Child.ErrorKind, KindOut);
    Resp.DiagJson = Child.DiagJson;
    return Child.Error.empty() ? "sandbox child failed" : Child.Error;
  }
  if (Child.St == ServeResponse::Status::Rejected) {
    KindOut = ErrorKind::Internal;
    return "sandbox child rejected request: " +
           (Child.Reason.empty() ? Child.Error : Child.Reason);
  }

  // Ok: adopt the child's result fields but keep the parent's identity and
  // policy bookkeeping (id, attempts) — the parent owns the envelope.
  Child.Id = Resp.Id;
  Child.Attempts = Resp.Attempts;
  Child.Degrade = "sandbox";
  Resp = Child;
  return "";
}

//===----------------------------------------------------------------------===//
// SocketServer
//===----------------------------------------------------------------------===//

namespace {

/// Requests larger than this without a newline are a poisoned stream; the
/// connection is dropped rather than buffered without bound.
constexpr size_t MaxLineBytes = 8u << 20;

struct Conn {
  int Fd = -1;
  std::mutex WrMu; ///< Serializes response lines from executor threads.
};

bool sendAll(Conn &C, const std::string &Data) {
  // Fault site: a response lost on the wire (docs/robustness.md). The
  // client sees a dropped line, the daemon carries on — exactly the
  // peer-gone path below.
  if (faults::enabled() &&
      faults::shouldFailNext(faults::Site::ServeResponseWrite))
    return false;
  std::lock_guard<std::mutex> L(C.WrMu);
  size_t Off = 0;
  while (Off < Data.size()) {
    ssize_t N = ::send(C.Fd, Data.data() + Off, Data.size() - Off,
                       MSG_NOSIGNAL);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return false; // Peer gone; the response is dropped, not the server.
    }
    Off += static_cast<size_t>(N);
  }
  return true;
}

} // namespace

SocketServer::SocketServer(Service &Svc, std::string Path)
    : Svc(Svc), Path(std::move(Path)) {}

SocketServer::~SocketServer() { shutdown(); }

bool SocketServer::start(std::string &Err) {
  sockaddr_un Addr;
  std::memset(&Addr, 0, sizeof(Addr));
  Addr.sun_family = AF_UNIX;
  if (Path.size() >= sizeof(Addr.sun_path)) {
    Err = "socket path too long: " + Path;
    return false;
  }
  std::memcpy(Addr.sun_path, Path.c_str(), Path.size() + 1);

  ListenFd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (ListenFd < 0) {
    Err = formatString("socket: %s", std::strerror(errno));
    return false;
  }
  ::unlink(Path.c_str());
  if (::bind(ListenFd, reinterpret_cast<sockaddr *>(&Addr),
             sizeof(Addr)) < 0 ||
      ::listen(ListenFd, 64) < 0) {
    Err = formatString("bind/listen %s: %s", Path.c_str(),
                       std::strerror(errno));
    ::close(ListenFd);
    ListenFd = -1;
    return false;
  }
  if (::pipe(StopPipe) < 0) {
    Err = formatString("pipe: %s", std::strerror(errno));
    ::close(ListenFd);
    ListenFd = -1;
    return false;
  }
  Acceptor = std::thread([this] { acceptLoop(); });
  return true;
}

void SocketServer::acceptLoop() {
  for (;;) {
    pollfd Fds[2] = {{ListenFd, POLLIN, 0}, {StopPipe[0], POLLIN, 0}};
    if (::poll(Fds, 2, -1) < 0) {
      if (errno == EINTR)
        continue;
      return;
    }
    if (Fds[1].revents)
      return;
    if (!(Fds[0].revents & POLLIN))
      continue;
    int Fd = ::accept(ListenFd, nullptr, nullptr);
    if (Fd < 0)
      continue;
    std::lock_guard<std::mutex> L(ConnMu);
    if (Stopped) {
      ::close(Fd);
      return;
    }
    ConnFds.push_back(Fd);
    ConnThreads.emplace_back([this, Fd] { handleConnection(Fd); });
  }
}

void SocketServer::handleConnection(int Fd) {
  auto C = std::make_shared<Conn>();
  C->Fd = Fd;
  std::string Buf;
  char Tmp[4096];
  for (;;) {
    ssize_t N = ::recv(Fd, Tmp, sizeof(Tmp), 0);
    if (N < 0 && errno == EINTR)
      continue;
    if (N <= 0)
      return; // EOF or shutdown(); the fd is closed by SocketServer.
    Buf.append(Tmp, static_cast<size_t>(N));
    if (Buf.size() > MaxLineBytes && Buf.find('\n') == std::string::npos)
      return; // Unframed flood; drop the connection.
    size_t NL;
    while ((NL = Buf.find('\n')) != std::string::npos) {
      std::string Line = Buf.substr(0, NL);
      Buf.erase(0, NL + 1);
      if (Line.empty())
        continue;
      // The response is written from whatever thread completes the
      // request (executor on acceptance, this thread on shed), so the
      // Service's drain barrier also covers the write.
      Svc.submit(std::move(Line), [C](std::string Resp) {
        Resp += '\n';
        sendAll(*C, Resp);
      });
    }
  }
}

void SocketServer::shutdown() {
  {
    std::lock_guard<std::mutex> L(ConnMu);
    if (Stopped)
      return;
    Stopped = true;
  }
  if (ListenFd < 0)
    return; // Never started.
  // Order matters: stop admitting, stop accepting, let accepted work
  // finish (responses are written inside the drain barrier), and only
  // then unblock the connection readers.
  Svc.beginShutdown();
  (void)!::write(StopPipe[1], "x", 1);
  if (Acceptor.joinable())
    Acceptor.join();
  // Connections already established in the listen backlog (the peer's
  // connect() returned, but the acceptor exited on the stop pipe before
  // accept()ing them) would see a bare RST when the listener closes.
  // Accept them now so their requests get the structured shutting-down
  // rejection like every other accepted peer.
  for (;;) {
    pollfd P = {ListenFd, POLLIN, 0};
    if (::poll(&P, 1, 0) <= 0 || !(P.revents & POLLIN))
      break;
    int Fd = ::accept(ListenFd, nullptr, nullptr);
    if (Fd < 0)
      break;
    std::lock_guard<std::mutex> L(ConnMu);
    ConnFds.push_back(Fd);
    ConnThreads.emplace_back([this, Fd] { handleConnection(Fd); });
  }
  ::close(ListenFd);
  ListenFd = -1;
  Svc.drain();
  {
    std::lock_guard<std::mutex> L(ConnMu);
    for (int Fd : ConnFds)
      ::shutdown(Fd, SHUT_RDWR);
  }
  for (std::thread &T : ConnThreads)
    T.join();
  for (int Fd : ConnFds)
    ::close(Fd);
  ConnFds.clear();
  ConnThreads.clear();
  ::close(StopPipe[0]);
  ::close(StopPipe[1]);
  StopPipe[0] = StopPipe[1] = -1;
  ::unlink(Path.c_str());
}
