//===- Server.cpp - Resilient simulation service -------------------------------//
//
// Policy layering for one request (docs/serving.md):
//
//   admission (bounded queue, shed on overflow)
//     -> deadline (queue wait counts; remaining budget arms MaxWallMs)
//       -> attempt loop (retry transient ErrorKinds with backoff+jitter)
//         -> degradation ladder (per compile key: fused -> unfused -> serial)
//           -> circuit breaker (cache disk failures -> memory-only)
//             -> execution (Runner / Interpreter with guardrails + Diag)
//
// Every decision increments exactly one ServeStats counter and every
// request — poisoned, shed, crashed, expired — produces exactly one
// structured response line.
//
//===----------------------------------------------------------------------===//

#include "serve/Server.h"

#include "driver/Runner.h"
#include "ir/Parser.h"
#include "sim/Diag.h"
#include "sim/Interpreter.h"
#include "sim/Replay.h"
#include "support/Env.h"
#include "support/FaultInject.h"
#include "support/ProgramCache.h"
#include "support/Status.h"
#include "support/Support.h"
#include "support/WorkerPool.h"

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <variant>

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace tawa;
using namespace tawa::serve;
using Clock = std::chrono::steady_clock;

//===----------------------------------------------------------------------===//
// Config
//===----------------------------------------------------------------------===//

ServeConfig ServeConfig::fromEnv() {
  ServeConfig C;
  C.Workers = envInt64("TAWA_SERVE_WORKERS", C.Workers);
  C.QueueDepth = envInt64("TAWA_SERVE_QUEUE_DEPTH", C.QueueDepth);
  C.MaxRetries = envInt64("TAWA_SERVE_RETRIES", C.MaxRetries);
  C.BackoffBaseMs = envInt64("TAWA_SERVE_BACKOFF_MS", C.BackoffBaseMs);
  C.BackoffMaxMs = envInt64("TAWA_SERVE_BACKOFF_MAX_MS", C.BackoffMaxMs);
  C.DegradeThreshold =
      envInt64("TAWA_SERVE_DEGRADE_FAILURES", C.DegradeThreshold);
  C.BreakerThreshold =
      envInt64("TAWA_SERVE_BREAKER_FAILURES", C.BreakerThreshold);
  C.BreakerCooldownMs =
      envInt64("TAWA_SERVE_BREAKER_COOLDOWN_MS", C.BreakerCooldownMs);
  C.DefaultDeadlineMs = envInt64("TAWA_SERVE_DEADLINE_MS", C.DefaultDeadlineMs);
  C.DefaultMaxSteps = envInt64("TAWA_SERVE_MAX_STEPS", C.DefaultMaxSteps);
  C.ExecWorkers = envInt64("TAWA_SERVE_EXEC_WORKERS", C.ExecWorkers);
  return C;
}

//===----------------------------------------------------------------------===//
// Service lifecycle
//===----------------------------------------------------------------------===//

Service::Service(ServeConfig C) : Cfg(C) {
  if (Cfg.Workers <= 0)
    Cfg.Workers = std::max<int64_t>(
        1, WorkerPool::shared().getNumWorkers() / 2);
  Cfg.QueueDepth = std::max<int64_t>(1, Cfg.QueueDepth);
  Cfg.MaxRetries = std::max<int64_t>(0, Cfg.MaxRetries);
  Cfg.DegradeThreshold = std::max<int64_t>(1, Cfg.DegradeThreshold);
  Cfg.BreakerThreshold = std::max<int64_t>(1, Cfg.BreakerThreshold);
  // Baseline the breaker on the cache's current disk-failure count so
  // failures from before this service existed are not evidence.
  {
    ProgramCache::Stats S = ProgramCache::shared().getStats();
    Breaker.LastDiskFailures = S.DiskReadFailures + S.DiskWriteFailures;
  }
  for (int64_t I = 0; I < Cfg.Workers; ++I)
    Executors.emplace_back([this] { executorLoop(); });
}

Service::~Service() { shutdown(); }

void Service::beginShutdown() {
  {
    std::lock_guard<std::mutex> L(QMu);
    Stopping = true;
  }
  QueueCV.notify_all();
}

void Service::drain() {
  std::unique_lock<std::mutex> L(QMu);
  IdleCV.wait(L, [&] { return Queue.empty() && InflightNow.load() == 0; });
}

void Service::shutdown() {
  beginShutdown();
  drain();
  {
    std::lock_guard<std::mutex> L(QMu);
    if (Joined)
      return;
    Joined = true;
  }
  for (std::thread &T : Executors)
    T.join();
}

void Service::closeGate() {
  std::lock_guard<std::mutex> L(GateMu);
  GateOpen = false;
}

void Service::openGate() {
  {
    std::lock_guard<std::mutex> L(GateMu);
    GateOpen = true;
  }
  GateCV.notify_all();
}

ServeStats Service::stats() const {
  std::lock_guard<std::mutex> L(StatsMu);
  return Stats;
}

//===----------------------------------------------------------------------===//
// Admission
//===----------------------------------------------------------------------===//

void Service::submit(std::string RequestText,
                     std::function<void(std::string)> Done) {
  enum class Verdict { Accepted, Overloaded, ShuttingDown };
  Verdict V;
  {
    std::lock_guard<std::mutex> L(QMu);
    if (Stopping) {
      V = Verdict::ShuttingDown;
    } else if (static_cast<int64_t>(Queue.size()) >= Cfg.QueueDepth) {
      V = Verdict::Overloaded;
    } else {
      V = Verdict::Accepted;
      Job J;
      J.Text = std::move(RequestText);
      J.Done = std::move(Done);
      J.Enqueued = Clock::now();
      Queue.push_back(std::move(J));
      QueueNow.fetch_add(1);
      std::lock_guard<std::mutex> SL(StatsMu);
      ++Stats.Accepted;
    }
  }
  if (V == Verdict::Accepted) {
    QueueCV.notify_one();
    return;
  }
  // Shed path: never executes, but still answers with the request's id
  // (best effort — a request too malformed to parse sheds with id "").
  ServeRequest Req;
  parseRequest(RequestText, Req);
  ServeResponse Resp;
  Resp.Id = Req.Id;
  Resp.St = ServeResponse::Status::Rejected;
  Resp.Reason = V == Verdict::Overloaded ? "overloaded" : "shutting-down";
  {
    std::lock_guard<std::mutex> L(StatsMu);
    if (V == Verdict::Overloaded)
      ++Stats.RejectedOverload;
    else
      ++Stats.RejectedShutdown;
  }
  Done(Resp.render());
}

std::string Service::call(const std::string &RequestText) {
  std::mutex Mu;
  std::condition_variable CV;
  bool Ready = false;
  std::string Out;
  submit(RequestText, [&](std::string R) {
    std::lock_guard<std::mutex> L(Mu);
    Out = std::move(R);
    Ready = true;
    CV.notify_one();
  });
  std::unique_lock<std::mutex> L(Mu);
  CV.wait(L, [&] { return Ready; });
  return Out;
}

void Service::executorLoop() {
  for (;;) {
    Job J;
    {
      std::unique_lock<std::mutex> L(QMu);
      QueueCV.wait(L, [&] { return Stopping || !Queue.empty(); });
      if (Queue.empty()) {
        if (Stopping)
          return;
        continue;
      }
      // Shutdown drains: accepted requests run even after Stopping.
      J = std::move(Queue.front());
      Queue.pop_front();
      QueueNow.fetch_sub(1);
      InflightNow.fetch_add(1);
    }
    std::string Resp = process(J);
    // The response callback runs before the request stops counting as
    // in-flight, so drain() returning means every answer was delivered
    // (the socket layer writes inside Done).
    J.Done(std::move(Resp));
    {
      std::lock_guard<std::mutex> L(QMu);
      InflightNow.fetch_sub(1);
    }
    IdleCV.notify_all();
  }
}

//===----------------------------------------------------------------------===//
// Request processing: deadline -> retry -> ladder -> breaker -> execute
//===----------------------------------------------------------------------===//

int Service::ladderLevel(const std::string &Key) {
  if (Key.empty())
    return 0;
  std::lock_guard<std::mutex> L(LadderMu);
  return Ladder[Key].Level;
}

void Service::recordCrash(const std::string &Key) {
  if (Key.empty())
    return;
  bool Stepped = false;
  {
    std::lock_guard<std::mutex> L(LadderMu);
    LadderState &S = Ladder[Key];
    if (S.Level >= 2)
      return; // Already at the floor.
    if (++S.FailsAtLevel >= Cfg.DegradeThreshold) {
      ++S.Level;
      S.FailsAtLevel = 0;
      Stepped = true;
    }
  }
  if (Stepped) {
    std::lock_guard<std::mutex> L(StatsMu);
    ++Stats.DegradeSteps;
  }
}

void Service::breakerBeforeAttempt() {
  std::lock_guard<std::mutex> L(BreakerMu);
  if (Breaker.State != BreakerState::St::Open)
    return;
  auto Elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                     Clock::now() - Breaker.OpenedAt)
                     .count();
  if (Elapsed < Cfg.BreakerCooldownMs)
    return;
  // Half-open probe: restore the disk layer; the next attempt's failure
  // delta decides whether it stays.
  ProgramCache::shared().setPersistDir(Breaker.SavedDir);
  Breaker.State = BreakerState::St::HalfOpen;
  std::lock_guard<std::mutex> SL(StatsMu);
  ++Stats.BreakerProbes;
}

void Service::breakerAfterAttempt() {
  std::lock_guard<std::mutex> L(BreakerMu);
  ProgramCache::Stats S = ProgramCache::shared().getStats();
  uint64_t Total = S.DiskReadFailures + S.DiskWriteFailures;
  uint64_t Delta = Total - Breaker.LastDiskFailures;
  Breaker.LastDiskFailures = Total;
  switch (Breaker.State) {
  case BreakerState::St::Closed: {
    Breaker.Accum += static_cast<int64_t>(Delta);
    if (Breaker.Accum < Cfg.BreakerThreshold)
      return;
    Breaker.Accum = 0;
    Breaker.SavedDir = ProgramCache::shared().getPersistDir();
    if (Breaker.SavedDir.empty())
      return; // No disk layer configured; nothing to shed.
    ProgramCache::shared().setPersistDir("");
    Breaker.State = BreakerState::St::Open;
    Breaker.OpenedAt = Clock::now();
    std::lock_guard<std::mutex> SL(StatsMu);
    ++Stats.BreakerTrips;
    return;
  }
  case BreakerState::St::HalfOpen: {
    if (Delta > 0) {
      // Probe failed: shed the disk layer again and restart the cooldown.
      ProgramCache::shared().setPersistDir("");
      Breaker.State = BreakerState::St::Open;
      Breaker.OpenedAt = Clock::now();
      std::lock_guard<std::mutex> SL(StatsMu);
      ++Stats.BreakerTrips;
    } else {
      Breaker.State = BreakerState::St::Closed;
      Breaker.Accum = 0;
      std::lock_guard<std::mutex> SL(StatsMu);
      ++Stats.BreakerCloses;
    }
    return;
  }
  case BreakerState::St::Open:
    return; // Disk layer off: no new evidence accumulates.
  }
}

std::string Service::requestKey(const ServeRequest &Req) const {
  switch (Req.K) {
  case ServeRequest::Kind::Ping:
    return "";
  case ServeRequest::Kind::Gemm: {
    Runner R;
    return R.compileKey(Req.Gemm, getGemmEnvelope(Req.F, Req.Gemm));
  }
  case ServeRequest::Kind::Attention: {
    Runner R;
    return R.compileKey(Req.Mha, getAttentionEnvelope(Req.F, Req.Mha));
  }
  case ServeRequest::Kind::Ir:
    return formatString("ir|%016llx",
                        static_cast<unsigned long long>(
                            fnv1a64(Req.IrText)));
  }
  return "";
}

namespace {

const char *degradeName(int Level) {
  return Level == 0 ? "fused" : Level == 1 ? "unfused" : "serial";
}

bool isTransient(ErrorKind K) {
  // Kinds worth retrying: another attempt can genuinely turn out
  // differently (a crashed worker, a torn disk read, a corrupt cached
  // program that recompiles). Deterministic kinds — deadlock, budget
  // trips, verifier and compile failures — fail fast; retrying replays
  // the same outcome with interest.
  return K == ErrorKind::WorkerCrash || K == ErrorKind::CacheIo ||
         K == ErrorKind::CorruptProgram;
}

bool countsTowardLadder(ErrorKind K) {
  return K == ErrorKind::WorkerCrash || K == ErrorKind::Internal;
}

} // namespace

std::string Service::process(const Job &J) {
  ServeRequest Req;
  std::string ParseErr = parseRequest(J.Text, Req);
  ServeResponse Resp;
  Resp.Id = Req.Id;
  if (!ParseErr.empty()) {
    Resp.St = ServeResponse::Status::Rejected;
    Resp.Reason = "bad-request";
    Resp.Error = ParseErr;
    std::lock_guard<std::mutex> L(StatsMu);
    ++Stats.BadRequests;
    return Resp.render();
  }

  if (Req.WaitGate) {
    std::unique_lock<std::mutex> G(GateMu);
    GateCV.wait(G, [&] { return GateOpen; });
  }
  if (Req.SleepMs > 0)
    std::this_thread::sleep_for(std::chrono::milliseconds(Req.SleepMs));

  if (Req.K == ServeRequest::Kind::Ping) {
    Resp.St = ServeResponse::Status::Ok;
    std::lock_guard<std::mutex> L(StatsMu);
    ++Stats.Succeeded;
    return Resp.render();
  }

  int64_t DeadlineMs =
      Req.DeadlineMs > 0 ? Req.DeadlineMs : Cfg.DefaultDeadlineMs;
  Clock::time_point DeadlineAt =
      J.Enqueued + std::chrono::milliseconds(DeadlineMs);
  auto remainingMs = [&] {
    return std::chrono::duration_cast<std::chrono::milliseconds>(
               DeadlineAt - Clock::now())
        .count();
  };

  std::string Key = requestKey(Req);
  int64_t Attempt = 0;
  for (;;) {
    ++Attempt;
    int64_t Rem = remainingMs();
    if (Rem <= 0) {
      // Deterministic message: no elapsed-time numbers, so identical
      // overload scenarios produce identical response lines.
      Resp = ServeResponse();
      Resp.Id = Req.Id;
      Resp.St = ServeResponse::Status::Failed;
      Resp.Attempts = Attempt - 1;
      Resp.Error = Attempt == 1 ? "deadline expired before execution"
                                : "deadline expired during retries";
      Resp.ErrorKind = errorKindName(ErrorKind::WallClock);
      std::lock_guard<std::mutex> L(StatsMu);
      ++Stats.Failed;
      if (Attempt == 1)
        ++Stats.DeadlineQueueExpired;
      return Resp.render();
    }

    breakerBeforeAttempt();
    int Level = ladderLevel(Key);
    Resp = ServeResponse();
    Resp.Id = Req.Id;
    Resp.Attempts = Attempt;
    Resp.Degrade = degradeName(Level);
    ErrorKind Kind = ErrorKind::None;
    std::string Err = executeOnce(Req, Level, Rem, Resp, Kind);
    breakerAfterAttempt();

    if (Err.empty()) {
      Resp.St = ServeResponse::Status::Ok;
      std::lock_guard<std::mutex> L(StatsMu);
      ++Stats.Succeeded;
      return Resp.render();
    }

    if (Kind == ErrorKind::None)
      Kind = classifyError(Err);
    if (countsTowardLadder(Kind))
      recordCrash(Key);
    if (isTransient(Kind) && Attempt <= Cfg.MaxRetries) {
      {
        std::lock_guard<std::mutex> L(StatsMu);
        ++Stats.Retries;
      }
      int64_t Shift = std::min<int64_t>(Attempt - 1, 20);
      int64_t Back = std::min(Cfg.BackoffMaxMs, Cfg.BackoffBaseMs << Shift);
      // Deterministic jitter: keyed by (id, attempt), not a clock, so a
      // replayed trace backs off identically.
      int64_t Jitter =
          Cfg.BackoffBaseMs > 0
              ? static_cast<int64_t>(
                    fnv1a64(Req.Id + "#" + std::to_string(Attempt)) %
                    static_cast<uint64_t>(Cfg.BackoffBaseMs))
              : 0;
      int64_t Sleep = std::min(Back + Jitter, std::max<int64_t>(
                                                  0, remainingMs()));
      if (Sleep > 0)
        std::this_thread::sleep_for(std::chrono::milliseconds(Sleep));
      continue;
    }

    Resp.St = ServeResponse::Status::Failed;
    Resp.Error = Err;
    Resp.ErrorKind = errorKindName(Kind);
    std::lock_guard<std::mutex> L(StatsMu);
    ++Stats.Failed;
    return Resp.render();
  }
}

//===----------------------------------------------------------------------===//
// Execution
//===----------------------------------------------------------------------===//

std::string Service::executeOnce(const ServeRequest &Req, int Level,
                                 int64_t RemainingMs, ServeResponse &Resp,
                                 ErrorKind &KindOut) {
  if (Req.K == ServeRequest::Kind::Ir)
    return executeIr(Req, Level, RemainingMs, Resp, KindOut);

  Runner R;
  R.FuseBytecode = Level < 1;
  R.NumWorkers = Level >= 2 ? 1 : Cfg.ExecWorkers;
  R.MaxSteps = Req.MaxSteps > 0 ? Req.MaxSteps : Cfg.DefaultMaxSteps;
  R.MaxWallMs = RemainingMs;
  sim::ExecDiagnostic Diag;
  R.Diag = &Diag;

  RunResult Res = Req.K == ServeRequest::Kind::Gemm
                      ? R.runGemm(Req.F, Req.Gemm, Req.Functional)
                      : R.runAttention(Req.F, Req.Mha, Req.Functional);
  if (!Res.ok()) {
    KindOut = Res.Kind;
    if (!Diag.empty())
      Resp.DiagJson = Diag.renderJson();
    if (!Res.Error.empty())
      return Res.Error;
    KindOut = Res.Supported ? ErrorKind::Infeasible : ErrorKind::Unsupported;
    return Res.Supported ? "infeasible configuration"
                         : "unsupported configuration";
  }
  Resp.HasRun = true;
  Resp.Micros = Res.Micros;
  Resp.TFlops = Res.TFlops;
  Resp.MaxRelError = Res.MaxRelError;
  Resp.SmemBytes = Res.SmemBytes;
  Resp.RegsPerThread = Res.RegsPerThread;
  return "";
}

namespace {

/// Minimal decoder for the fuzz corpus's launch attributes (fuzz.grid /
/// fuzz.args / fuzz.faults — the same grammar tests/fuzz/Gen.cpp encodes).
/// Lives here because the serving layer must not depend on test code.
struct IrLaunch {
  int64_t GridX = 1, GridY = 1;
  struct Arg {
    bool IsScalar = false;
    int64_t Scalar = 0;
    std::vector<int64_t> Shape;
    uint64_t FillSeed = 0;
    /// Explicit integer payload ('d' entries — grouped-GEMM offset tables).
    /// Non-empty marks the tensor as an input even when FillSeed == 0.
    std::vector<int64_t> Data;
  };
  std::vector<Arg> Args;
  std::string FaultSpec;
};

std::string decodeIrLaunch(const Module &M, IrLaunch &L) {
  const auto &Attrs = M.getAttrs();
  auto GridIt = Attrs.find("fuzz.grid");
  if (GridIt == Attrs.end())
    return "missing fuzz.grid module attribute";
  const auto *Grid = std::get_if<std::vector<int64_t>>(&GridIt->second);
  if (!Grid || Grid->size() != 2)
    return "fuzz.grid must be [gridX, gridY]";
  L.GridX = (*Grid)[0];
  L.GridY = (*Grid)[1];

  auto ArgsIt = Attrs.find("fuzz.args");
  if (ArgsIt == Attrs.end())
    return "missing fuzz.args module attribute";
  const auto *Spec = std::get_if<std::string>(&ArgsIt->second);
  if (!Spec)
    return "fuzz.args must be a string";
  size_t Pos = 0;
  while (Pos < Spec->size()) {
    size_t End = Spec->find(';', Pos);
    if (End == std::string::npos)
      End = Spec->size();
    std::string Tok = Spec->substr(Pos, End - Pos);
    Pos = End + 1;
    if (Tok.empty())
      return "empty fuzz.args entry";
    IrLaunch::Arg A;
    if (Tok[0] == 's') {
      A.IsScalar = true;
      A.Scalar = std::strtoll(Tok.c_str() + 1, nullptr, 10);
    } else if (Tok[0] == 't') {
      size_t Colon = Tok.find(':');
      if (Colon == std::string::npos)
        return "malformed tensor entry in fuzz.args: " + Tok;
      A.FillSeed =
          std::strtoull(Tok.substr(1, Colon - 1).c_str(), nullptr, 10);
      size_t P = Colon + 1;
      while (P < Tok.size()) {
        size_t X = Tok.find('x', P);
        if (X == std::string::npos)
          X = Tok.size();
        A.Shape.push_back(
            std::strtoll(Tok.substr(P, X - P).c_str(), nullptr, 10));
        P = X + 1;
      }
      if (A.Shape.empty())
        return "tensor entry with no shape in fuzz.args: " + Tok;
    } else if (Tok[0] == 'd') {
      size_t Colon = Tok.find(':');
      if (Colon == std::string::npos)
        return "malformed data entry in fuzz.args: " + Tok;
      size_t P = 1;
      while (P < Colon) {
        size_t X = Tok.find('x', P);
        if (X == std::string::npos || X > Colon)
          X = Colon;
        A.Shape.push_back(
            std::strtoll(Tok.substr(P, X - P).c_str(), nullptr, 10));
        P = X + 1;
      }
      P = Colon + 1;
      while (P < Tok.size()) {
        size_t Comma = Tok.find(',', P);
        if (Comma == std::string::npos)
          Comma = Tok.size();
        A.Data.push_back(
            std::strtoll(Tok.substr(P, Comma - P).c_str(), nullptr, 10));
        P = Comma + 1;
      }
      if (A.Shape.empty() || A.Data.empty())
        return "data entry with no shape or values in fuzz.args: " + Tok;
      int64_t Elems = 1;
      for (int64_t S : A.Shape)
        Elems *= S;
      if (Elems != static_cast<int64_t>(A.Data.size()))
        return "data entry shape/value count mismatch in fuzz.args: " + Tok;
    } else {
      return "unknown fuzz.args entry kind: " + Tok;
    }
    L.Args.push_back(std::move(A));
  }

  auto FaultsIt = Attrs.find("fuzz.faults");
  if (FaultsIt != Attrs.end()) {
    const auto *F = std::get_if<std::string>(&FaultsIt->second);
    if (!F)
      return "fuzz.faults must be a string";
    L.FaultSpec = *F;
  }
  return "";
}

} // namespace

std::string Service::executeIr(const ServeRequest &Req, int Level,
                               int64_t RemainingMs, ServeResponse &Resp,
                               ErrorKind &KindOut) {
  IrContext Ctx;
  std::string Err;
  std::unique_ptr<Module> Mod = parseModule(Ctx, Req.IrText, Err);
  if (!Mod) {
    KindOut = ErrorKind::CompileError;
    return "ir parse: " + Err;
  }
  IrLaunch Launch;
  if (std::string DErr = decodeIrLaunch(*Mod, Launch); !DErr.empty()) {
    KindOut = ErrorKind::CompileError;
    return "ir launch: " + DErr;
  }

  sim::GpuConfig Cfg2;
  sim::RunOptions Opts;
  Opts.GridX = Launch.GridX;
  Opts.GridY = Launch.GridY;
  Opts.Functional = true;
  Opts.FuseBytecode = Level < 1;
  Opts.NumWorkers = Level >= 2 ? 1 : Cfg.ExecWorkers;
  Opts.MaxSteps = Req.MaxSteps > 0 ? Req.MaxSteps : Cfg.DefaultMaxSteps;
  Opts.MaxWallMs = RemainingMs;
  sim::ExecDiagnostic Diag;
  Opts.Diag = &Diag;

  std::vector<sim::TensorRef> OutputTensors;
  for (const IrLaunch::Arg &A : Launch.Args) {
    if (A.IsScalar) {
      Opts.Args.push_back(sim::RuntimeArg::scalar(A.Scalar));
      continue;
    }
    auto T = std::make_shared<sim::TensorData>(A.Shape);
    if (!A.Data.empty()) {
      int64_t E = std::min<int64_t>(T->getNumElements(),
                                    static_cast<int64_t>(A.Data.size()));
      for (int64_t I = 0; I < E; ++I)
        T->at(I) = static_cast<float>(A.Data[I]);
    } else if (A.FillSeed != 0) {
      T->fillRandom(A.FillSeed, 1.0f);
    } else {
      OutputTensors.push_back(T);
    }
    Opts.Args.push_back(sim::RuntimeArg::tensor(T));
  }

  // A request-carried fault spec arms the PROCESS-wide injection sites
  // for the duration of this run (replay/debug affordance — matches the
  // fuzz harness). Left alone when empty so an externally armed spec
  // (chaos soak, TAWA_FAULTS) is not clobbered.
  if (!Launch.FaultSpec.empty()) {
    std::string FErr;
    if (!faults::configure(Launch.FaultSpec, &FErr)) {
      KindOut = ErrorKind::CompileError;
      return "ir faults: " + FErr;
    }
  }
  sim::Interpreter Interp(*Mod, Cfg2);
  std::vector<sim::CtaTrace> Traces;
  std::string RunErr = Interp.runGrid(Opts, nullptr, &Traces);
  if (!Launch.FaultSpec.empty())
    faults::reset();

  if (!RunErr.empty()) {
    KindOut = classifyError(RunErr);
    if (!Diag.empty())
      Resp.DiagJson = Diag.renderJson();
    return RunErr;
  }

  Resp.HasIr = true;
  for (const sim::TensorRef &T : OutputTensors)
    Resp.Outputs.push_back(formatString(
        "%016llx", static_cast<unsigned long long>(fnv1a64(
                       T->data(), static_cast<size_t>(T->getNumElements()) *
                                      sizeof(float)))));
  std::vector<const sim::CtaTrace *> Ptrs;
  Ptrs.reserve(Traces.size());
  for (const sim::CtaTrace &T : Traces)
    Ptrs.push_back(&T);
  Resp.Cycles = sim::replaySmSchedule(Ptrs, Cfg2, sim::ReplayParams()).Cycles;
  return "";
}

//===----------------------------------------------------------------------===//
// SocketServer
//===----------------------------------------------------------------------===//

namespace {

/// Requests larger than this without a newline are a poisoned stream; the
/// connection is dropped rather than buffered without bound.
constexpr size_t MaxLineBytes = 8u << 20;

struct Conn {
  int Fd = -1;
  std::mutex WrMu; ///< Serializes response lines from executor threads.
};

bool sendAll(Conn &C, const std::string &Data) {
  std::lock_guard<std::mutex> L(C.WrMu);
  size_t Off = 0;
  while (Off < Data.size()) {
    ssize_t N = ::send(C.Fd, Data.data() + Off, Data.size() - Off,
                       MSG_NOSIGNAL);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return false; // Peer gone; the response is dropped, not the server.
    }
    Off += static_cast<size_t>(N);
  }
  return true;
}

} // namespace

SocketServer::SocketServer(Service &Svc, std::string Path)
    : Svc(Svc), Path(std::move(Path)) {}

SocketServer::~SocketServer() { shutdown(); }

bool SocketServer::start(std::string &Err) {
  sockaddr_un Addr;
  std::memset(&Addr, 0, sizeof(Addr));
  Addr.sun_family = AF_UNIX;
  if (Path.size() >= sizeof(Addr.sun_path)) {
    Err = "socket path too long: " + Path;
    return false;
  }
  std::memcpy(Addr.sun_path, Path.c_str(), Path.size() + 1);

  ListenFd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (ListenFd < 0) {
    Err = formatString("socket: %s", std::strerror(errno));
    return false;
  }
  ::unlink(Path.c_str());
  if (::bind(ListenFd, reinterpret_cast<sockaddr *>(&Addr),
             sizeof(Addr)) < 0 ||
      ::listen(ListenFd, 64) < 0) {
    Err = formatString("bind/listen %s: %s", Path.c_str(),
                       std::strerror(errno));
    ::close(ListenFd);
    ListenFd = -1;
    return false;
  }
  if (::pipe(StopPipe) < 0) {
    Err = formatString("pipe: %s", std::strerror(errno));
    ::close(ListenFd);
    ListenFd = -1;
    return false;
  }
  Acceptor = std::thread([this] { acceptLoop(); });
  return true;
}

void SocketServer::acceptLoop() {
  for (;;) {
    pollfd Fds[2] = {{ListenFd, POLLIN, 0}, {StopPipe[0], POLLIN, 0}};
    if (::poll(Fds, 2, -1) < 0) {
      if (errno == EINTR)
        continue;
      return;
    }
    if (Fds[1].revents)
      return;
    if (!(Fds[0].revents & POLLIN))
      continue;
    int Fd = ::accept(ListenFd, nullptr, nullptr);
    if (Fd < 0)
      continue;
    std::lock_guard<std::mutex> L(ConnMu);
    if (Stopped) {
      ::close(Fd);
      return;
    }
    ConnFds.push_back(Fd);
    ConnThreads.emplace_back([this, Fd] { handleConnection(Fd); });
  }
}

void SocketServer::handleConnection(int Fd) {
  auto C = std::make_shared<Conn>();
  C->Fd = Fd;
  std::string Buf;
  char Tmp[4096];
  for (;;) {
    ssize_t N = ::recv(Fd, Tmp, sizeof(Tmp), 0);
    if (N < 0 && errno == EINTR)
      continue;
    if (N <= 0)
      return; // EOF or shutdown(); the fd is closed by SocketServer.
    Buf.append(Tmp, static_cast<size_t>(N));
    if (Buf.size() > MaxLineBytes && Buf.find('\n') == std::string::npos)
      return; // Unframed flood; drop the connection.
    size_t NL;
    while ((NL = Buf.find('\n')) != std::string::npos) {
      std::string Line = Buf.substr(0, NL);
      Buf.erase(0, NL + 1);
      if (Line.empty())
        continue;
      // The response is written from whatever thread completes the
      // request (executor on acceptance, this thread on shed), so the
      // Service's drain barrier also covers the write.
      Svc.submit(std::move(Line), [C](std::string Resp) {
        Resp += '\n';
        sendAll(*C, Resp);
      });
    }
  }
}

void SocketServer::shutdown() {
  {
    std::lock_guard<std::mutex> L(ConnMu);
    if (Stopped)
      return;
    Stopped = true;
  }
  if (ListenFd < 0)
    return; // Never started.
  // Order matters: stop admitting, stop accepting, let accepted work
  // finish (responses are written inside the drain barrier), and only
  // then unblock the connection readers.
  Svc.beginShutdown();
  (void)!::write(StopPipe[1], "x", 1);
  if (Acceptor.joinable())
    Acceptor.join();
  ::close(ListenFd);
  ListenFd = -1;
  Svc.drain();
  {
    std::lock_guard<std::mutex> L(ConnMu);
    for (int Fd : ConnFds)
      ::shutdown(Fd, SHUT_RDWR);
  }
  for (std::thread &T : ConnThreads)
    T.join();
  for (int Fd : ConnFds)
    ::close(Fd);
  ConnFds.clear();
  ConnThreads.clear();
  ::close(StopPipe[0]);
  ::close(StopPipe[1]);
  StopPipe[0] = StopPipe[1] = -1;
  ::unlink(Path.c_str());
}
