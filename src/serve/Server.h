//===- Server.h - Resilient simulation service ------------------*- C++ -*-===//
//
// tawa-serve (docs/serving.md): a persistent daemon that accepts kernel
// configurations over a unix socket and runs them through the process-wide
// ProgramCache + WorkerPool. Two classes:
//
//  * Service — transport-free core: bounded admission queue with load
//    shedding, executor threads, per-request deadlines mapped onto the
//    execution guardrails, retry with exponential backoff + deterministic
//    jitter for transient failure kinds, a per-compile-key degradation
//    ladder (fused -> unfused -> serial), a circuit breaker over the
//    program cache's disk layer, and drain-based graceful shutdown.
//    Everything the robustness tests assert lives here.
//
//  * SocketServer — AF_UNIX transport: newline-delimited request/response
//    framing (serve/Protocol), one handler thread per connection, and a
//    shutdown path that drains the Service before unblocking readers.
//
//===----------------------------------------------------------------------===//

#ifndef TAWA_SERVE_SERVER_H
#define TAWA_SERVE_SERVER_H

#include "serve/FlightRecorder.h"
#include "serve/Protocol.h"
#include "serve/Sandbox.h"
#include "support/Status.h"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace tawa {
namespace serve {

/// Tuning knobs, each with a TAWA_SERVE_* environment override
/// (docs/serving.md has the full table).
struct ServeConfig {
  /// Executor threads; 0 = half the pool's worker count (executors
  /// multiplex onto the shared WorkerPool, so more executors than workers
  /// just deepens contention). TAWA_SERVE_WORKERS.
  int64_t Workers = 0;
  /// Admission queue bound; a request arriving with the queue full is shed
  /// with `rejected: overloaded`. TAWA_SERVE_QUEUE_DEPTH.
  int64_t QueueDepth = 16;
  /// Retries after the first attempt, transient kinds only.
  /// TAWA_SERVE_RETRIES.
  int64_t MaxRetries = 2;
  /// Backoff before retry K is min(BackoffBaseMs << (K-1), BackoffMaxMs)
  /// plus deterministic jitter in [0, BackoffBaseMs) keyed by (request id,
  /// attempt). TAWA_SERVE_BACKOFF_MS / TAWA_SERVE_BACKOFF_MAX_MS.
  int64_t BackoffBaseMs = 1;
  int64_t BackoffMaxMs = 64;
  /// Crash-kind failures at one ladder level before stepping down.
  /// TAWA_SERVE_DEGRADE_FAILURES.
  int64_t DegradeThreshold = 2;
  /// Cache disk failures before the breaker trips to memory-only.
  /// TAWA_SERVE_BREAKER_FAILURES.
  int64_t BreakerThreshold = 3;
  /// Open -> half-open probe delay. TAWA_SERVE_BREAKER_COOLDOWN_MS.
  int64_t BreakerCooldownMs = 1000;
  /// Deadline applied when a request names none. TAWA_SERVE_DEADLINE_MS.
  int64_t DefaultDeadlineMs = 30000;
  /// Step budget applied when a request names none; matches the fuzz
  /// harness bound so corpus replays trip identically.
  /// TAWA_SERVE_MAX_STEPS.
  int64_t DefaultMaxSteps = 1000000;
  /// Workers per simulation (Runner::NumWorkers); 0 = hardware.
  /// TAWA_SERVE_EXEC_WORKERS.
  int64_t ExecWorkers = 0;
  /// Flight-recorder ring depth (last N admitted requests kept for crash
  /// dumps). TAWA_SERVE_FLIGHT_RECORDER.
  int64_t FlightRecorderDepth = 64;
  /// Crash-dump directory; "" disables dumping (the ring still records).
  /// TAWA_SERVE_CRASH_DIR / tawa-serve --crash-dir.
  std::string CrashDumpDir;
  /// Out-of-process sandbox knobs (serve/Sandbox.h); the supervisor is
  /// created lazily on the first sandbox-routed request.
  SandboxConfig Sandbox;

  static ServeConfig fromEnv();
};

/// Monotonic counters, snapshot via Service::stats(). Every admission
/// decision and resilience action increments exactly one success/failure
/// counter, so tests pin exact sequences.
struct ServeStats {
  int64_t Accepted = 0;
  int64_t RejectedOverload = 0;
  int64_t RejectedShutdown = 0;
  int64_t BadRequests = 0;
  int64_t Succeeded = 0;
  int64_t Failed = 0;
  int64_t Retries = 0;
  int64_t DeadlineQueueExpired = 0;
  int64_t DegradeSteps = 0;
  int64_t BreakerTrips = 0;
  int64_t BreakerProbes = 0;
  int64_t BreakerCloses = 0;
  int64_t SandboxRequests = 0; ///< Requests routed out of process.
  int64_t SandboxCrashes = 0;  ///< Attempts lost to a sandbox death.
  int64_t SandboxTimeouts = 0; ///< Attempts lost to heartbeat/deadline.
  int64_t SandboxSpawns = 0;   ///< Child spawns (merged from Supervisor).
  int64_t CrashDumps = 0;      ///< Flight-recorder dumps written.
};

class Service {
public:
  explicit Service(ServeConfig C = ServeConfig::fromEnv());
  /// shutdown() if the owner did not call it.
  ~Service();

  Service(const Service &) = delete;
  Service &operator=(const Service &) = delete;

  /// Admission: either enqueues \p RequestText and later invokes \p Done
  /// exactly once from an executor thread with the rendered response
  /// line, or sheds the request and invokes \p Done inline with a
  /// structured rejection. Never blocks on execution.
  void submit(std::string RequestText,
              std::function<void(std::string)> Done);

  /// Blocking convenience over submit(): returns the response line.
  std::string call(const std::string &RequestText);

  /// Stops admitting (subsequent submits are `rejected: shutting-down`);
  /// already-accepted requests still execute.
  void beginShutdown();
  /// Blocks until the queue is empty and no request is executing.
  void drain();
  /// beginShutdown + drain + join executors. Idempotent.
  void shutdown();

  ServeStats stats() const;
  int64_t queueNow() const { return QueueNow.load(); }
  int64_t inflightNow() const { return InflightNow.load(); }
  const ServeConfig &config() const { return Cfg; }

  /// Test gate for deterministic sequencing: while closed, requests with
  /// wait_gate=true park (counted in-flight) until openGate().
  void closeGate();
  void openGate();

  /// The black-box ring of recent requests (serve/FlightRecorder.h).
  FlightRecorder &recorder() { return Recorder; }

private:
  struct Job {
    std::string Text;
    std::function<void(std::string)> Done;
    std::chrono::steady_clock::time_point Enqueued;
  };

  /// Per-compile-key degradation state. Level 0 = fused, 1 = unfused,
  /// 2 = serial grid. Crash-kind failures (WorkerCrash / Internal) at a
  /// level accumulate; reaching DegradeThreshold steps the key down one
  /// level and resets the count. Levels never step back up — a key that
  /// needed degrading keeps its safe mode for the process lifetime.
  struct LadderState {
    int Level = 0;
    int64_t FailsAtLevel = 0;
  };

  /// Circuit breaker over the ProgramCache persist dir, driven by the
  /// cache's DiskReadFailures/DiskWriteFailures deltas. Closed -> Open
  /// disables the disk layer (setPersistDir("")); after BreakerCooldownMs
  /// a probe re-enables it (half-open) and the next delta decides Open or
  /// Closed.
  struct BreakerState {
    enum class St { Closed, Open, HalfOpen };
    St State = St::Closed;
    std::string SavedDir;
    uint64_t LastDiskFailures = 0;
    int64_t Accum = 0;
    std::chrono::steady_clock::time_point OpenedAt;
  };

  void executorLoop();
  std::string process(const Job &J);
  /// One execution attempt. Returns "" (Resp result fields filled) or the
  /// error string, with \p KindOut its taxonomy classification. Routes out
  /// of process when the request opted in or the ladder escalated the key
  /// to the sandbox level.
  std::string executeOnce(const std::string &RawText, const ServeRequest &Req,
                          int Level, int64_t RemainingMs, ServeResponse &Resp,
                          ErrorKind &KindOut);
  /// The out-of-process path: frames the raw request to the supervisor's
  /// warm pool, decodes the child's response line.
  std::string executeSandbox(const std::string &RawText,
                             int64_t RemainingMs, ServeResponse &Resp,
                             ErrorKind &KindOut);
  /// Lazily creates the supervisor (first sandbox-routed request).
  Supervisor &supervisor();
  int ladderLevel(const std::string &Key);
  void recordCrash(const std::string &Key);
  void breakerBeforeAttempt();
  void breakerAfterAttempt();
  std::string requestKey(const ServeRequest &Req) const;

  ServeConfig Cfg;
  std::vector<std::thread> Executors;

  mutable std::mutex QMu;
  std::condition_variable QueueCV; ///< Executors wait for work.
  std::condition_variable IdleCV;  ///< drain() waits for quiescence.
  std::deque<Job> Queue;
  bool Stopping = false;
  bool Joined = false;

  std::atomic<int64_t> QueueNow{0};
  std::atomic<int64_t> InflightNow{0};

  std::mutex GateMu;
  std::condition_variable GateCV;
  bool GateOpen = true;

  std::mutex LadderMu;
  std::map<std::string, LadderState> Ladder;

  std::mutex BreakerMu;
  BreakerState Breaker;

  FlightRecorder Recorder;
  mutable std::mutex SupMu;
  std::unique_ptr<Supervisor> Sup;

  mutable std::mutex StatsMu;
  ServeStats Stats;
};

/// AF_UNIX transport for a Service. One accept thread, one handler thread
/// per connection, newline-delimited frames.
class SocketServer {
public:
  SocketServer(Service &Svc, std::string Path);
  ~SocketServer();

  /// Binds + listens + starts accepting. Returns false with \p Err set.
  bool start(std::string &Err);

  /// Graceful shutdown (the daemon's SIGTERM path): stop accepting, stop
  /// admitting (Service::beginShutdown), drain in-flight work, then
  /// unblock and join every connection handler. Idempotent.
  void shutdown();

  const std::string &path() const { return Path; }

private:
  void acceptLoop();
  void handleConnection(int Fd);

  Service &Svc;
  std::string Path;
  int ListenFd = -1;
  int StopPipe[2] = {-1, -1};
  std::thread Acceptor;
  std::mutex ConnMu;
  std::vector<int> ConnFds;
  std::vector<std::thread> ConnThreads;
  bool Stopped = false;
};

} // namespace serve
} // namespace tawa

#endif // TAWA_SERVE_SERVER_H
