//===- ArefSemantics.h - Fig. 4 operational semantics -----------*- C++ -*-===//
//
// The asynchronous-reference abstract machine of §III-B, executable:
//
//   PUT:       requires E = 1; writes buf;       -> F = 1, E = 0
//   GET:       requires F = 1; reads buf;        -> F = 0, E = 0 (borrowed)
//   CONSUMED:  (from borrowed)                   -> F = 0, E = 1
//
// with initial state E = 1, F = 0. One ArefSlotState models one slot of the
// D-deep ring; ArefMachine models the whole ring plus the release/acquire
// happens-before chain the paper claims (producer writes → consumer reads →
// producer reuse). The simulator replays every lowered mbarrier transition
// through this machine, so protocol violations (double put, premature get,
// reuse before consumed) surface as hard errors rather than silent races.
//
//===----------------------------------------------------------------------===//

#ifndef TAWA_SEM_AREFSEMANTICS_H
#define TAWA_SEM_AREFSEMANTICS_H

#include <cstdint>
#include <string>
#include <vector>

namespace tawa {
namespace sem {

/// The three abstract states a slot can be in. Exactly one of E/F holds a
/// credit except in the borrowed state, where neither does.
enum class SlotState : uint8_t {
  Empty,    ///< E = 1, F = 0: producer may put.
  Full,     ///< E = 0, F = 1: consumer may get.
  Borrowed, ///< E = 0, F = 0: value in use; consumed will release.
};

const char *getSlotStateName(SlotState S);

/// Outcome of attempting a transition.
enum class TransitionResult : uint8_t {
  Ok,            ///< Precondition held; state advanced.
  WouldBlock,    ///< Precondition does not hold yet (caller must wait).
  ProtocolError, ///< Transition illegal from this state even after waiting
                 ///< (e.g. consumed on an Empty slot).
};

/// One slot: the Fig. 4 triple <buf, F, E> with a generation counter used to
/// build happens-before edges.
class ArefSlotState {
public:
  SlotState getState() const { return State; }

  /// True when the corresponding abstract flag holds a credit.
  bool emptyCredit() const { return State == SlotState::Empty; }
  bool fullCredit() const { return State == SlotState::Full; }

  /// Producer publication (PUT rule). \p Epoch identifies the producer's
  /// logical time; recorded so readers can validate happens-before.
  TransitionResult put(uint64_t Epoch);

  /// Consumer acquisition (GET rule). On success \p PublishEpochOut receives
  /// the epoch of the put whose value is being read.
  TransitionResult get(uint64_t *PublishEpochOut = nullptr);

  /// Consumer release (CONSUMED rule). Legal only from Borrowed: calling it
  /// on a never-gotten slot is a protocol error the compiler must never emit.
  TransitionResult consumed();

  /// Number of completed put→get→consumed round trips.
  uint64_t getGeneration() const { return Generation; }

private:
  SlotState State = SlotState::Empty;
  uint64_t PublishEpoch = 0;
  uint64_t Generation = 0;
};

/// A protocol violation (or deadlock) diagnosis.
struct ProtocolViolation {
  std::string Message;
  int64_t Slot = -1;
};

/// The whole D-slot ring of §III-B/§III-C2 plus violation accounting. This is
/// the reference model both for unit/property tests and for the simulator's
/// online checking.
class ArefMachine {
public:
  explicit ArefMachine(int64_t Depth, std::string Name = "aref");

  int64_t getDepth() const { return Depth; }
  const std::string &getName() const { return Name; }

  /// Blocking-style transitions: Ok or WouldBlock advance/queue naturally; a
  /// ProtocolError is recorded in the violation list.
  TransitionResult put(int64_t Slot, uint64_t Epoch);
  TransitionResult get(int64_t Slot, uint64_t *PublishEpochOut = nullptr);
  TransitionResult consumed(int64_t Slot);

  SlotState getSlotState(int64_t Slot) const;
  uint64_t getGeneration(int64_t Slot) const;

  bool hasViolations() const { return !Violations.empty(); }
  const std::vector<ProtocolViolation> &getViolations() const {
    return Violations;
  }

private:
  ArefSlotState &slot(int64_t Slot);
  void recordViolation(int64_t Slot, const std::string &What);

  int64_t Depth;
  std::string Name;
  std::vector<ArefSlotState> Slots;
  std::vector<ProtocolViolation> Violations;
};

} // namespace sem
} // namespace tawa

#endif // TAWA_SEM_AREFSEMANTICS_H
