//===- HappensBefore.h - Release/acquire ordering checker -------*- C++ -*-===//
//
// Validates the ordering claim of §III-B: every consumer read of an aref
// slot is ordered after the producer write that published it (put → get),
// and every producer reuse of the slot is ordered after the consumer's
// release (consumed → next put). The tracker builds a happens-before DAG
// over per-agent event sequences joined by the aref credits and answers
// reachability queries; tests use it to prove that compiled pipelines never
// exhibit a write-after-read or read-before-write on the staging buffers.
//
//===----------------------------------------------------------------------===//

#ifndef TAWA_SEM_HAPPENSBEFORE_H
#define TAWA_SEM_HAPPENSBEFORE_H

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace tawa {
namespace sem {

/// Kinds of events we order. Writes are the producer's buffer writes (TMA
/// deposits); reads are the consumer's WGMMA operand fetches.
enum class EventKind : uint8_t { Write, Read, Put, Get, Consumed };

/// One event in some agent's (warp group's) program order.
struct Event {
  EventKind Kind;
  int Agent;        ///< Warp-group id.
  int64_t Channel;  ///< Aref identity.
  int64_t Slot;     ///< Ring slot.
  uint64_t Seq;     ///< Global insertion id (for reporting).
};

/// Vector-clock based happens-before tracker. Agents advance their own clock
/// per event; put/get and consumed/put pairs merge clocks across agents
/// (release/acquire).
class HappensBeforeTracker {
public:
  explicit HappensBeforeTracker(int NumAgents);

  /// Records a producer write into (Channel, Slot). Returns an error string
  /// if the write races with an un-released consumer read (empty otherwise).
  std::string recordWrite(int Agent, int64_t Channel, int64_t Slot);

  /// Records a consumer read of (Channel, Slot). Returns an error string if
  /// the read is not ordered after the latest publishing write.
  std::string recordRead(int Agent, int64_t Channel, int64_t Slot);

  /// Release: producer publishes (put). Transfers the producer's clock into
  /// the channel slot.
  void recordPut(int Agent, int64_t Channel, int64_t Slot);

  /// Acquire: consumer observes the publication (get). Joins the slot clock
  /// into the consumer's clock.
  void recordGet(int Agent, int64_t Channel, int64_t Slot);

  /// Release from consumer side (consumed): transfers the consumer's clock
  /// into the slot's "free" clock, which the producer acquires at the next
  /// blocking put.
  void recordConsumed(int Agent, int64_t Channel, int64_t Slot);

  /// Acquire paired with the empty credit (producer about to reuse a slot).
  void recordAcquireEmpty(int Agent, int64_t Channel, int64_t Slot);

  uint64_t getNumEvents() const { return NextSeq; }

private:
  using Clock = std::vector<uint64_t>;

  /// True when clock A is <= clock B pointwise (A happened before or equals
  /// B's knowledge).
  static bool leq(const Clock &A, const Clock &B);
  static void join(Clock &Into, const Clock &From);
  void tick(int Agent) { ++Clocks[Agent][Agent]; }

  struct SlotMeta {
    Clock PublishClock;       ///< Producer clock at last put.
    Clock FreeClock;          ///< Consumer clock at last consumed.
    Clock LastReadClock;      ///< Consumer clock at last read.
    bool HasPublish = false;
    bool HasRead = false;
    bool ReadReleased = true; ///< Set false on read, true on consumed.
  };

  int NumAgents;
  std::vector<Clock> Clocks;
  std::map<std::pair<int64_t, int64_t>, SlotMeta> SlotMetas;
  uint64_t NextSeq = 0;
};

} // namespace sem
} // namespace tawa

#endif // TAWA_SEM_HAPPENSBEFORE_H
