//===- HappensBefore.cpp - Release/acquire ordering checker ------------------//

#include "sem/HappensBefore.h"

#include "support/Support.h"

using namespace tawa;
using namespace tawa::sem;

HappensBeforeTracker::HappensBeforeTracker(int NumAgents)
    : NumAgents(NumAgents) {
  assert(NumAgents >= 1 && "need at least one agent");
  Clocks.assign(NumAgents, Clock(NumAgents, 0));
}

bool HappensBeforeTracker::leq(const Clock &A, const Clock &B) {
  for (size_t I = 0, E = A.size(); I != E; ++I)
    if (A[I] > B[I])
      return false;
  return true;
}

void HappensBeforeTracker::join(Clock &Into, const Clock &From) {
  if (From.empty())
    return; // Slot clock never set (e.g. acquiring an initially-empty slot).
  for (size_t I = 0, E = Into.size(); I != E; ++I)
    if (From[I] > Into[I])
      Into[I] = From[I];
}

std::string HappensBeforeTracker::recordWrite(int Agent, int64_t Channel,
                                              int64_t Slot) {
  tick(Agent);
  ++NextSeq;
  SlotMeta &Meta = SlotMetas[{Channel, Slot}];
  // A new write must be ordered after the previous read's release: the
  // writer's clock must dominate the last reader's clock (acquired through
  // the consumed -> put chain). Otherwise we have a write-after-read race.
  if (Meta.HasRead && !Meta.ReadReleased)
    return formatString("write-after-read race: agent %d overwrites channel "
                        "%lld slot %lld while a read is still borrowed",
                        Agent, static_cast<long long>(Channel),
                        static_cast<long long>(Slot));
  if (Meta.HasRead && !leq(Meta.LastReadClock, Clocks[Agent]))
    return formatString("unordered write: agent %d writes channel %lld slot "
                        "%lld without acquiring the consumer's release",
                        Agent, static_cast<long long>(Channel),
                        static_cast<long long>(Slot));
  return "";
}

std::string HappensBeforeTracker::recordRead(int Agent, int64_t Channel,
                                             int64_t Slot) {
  tick(Agent);
  ++NextSeq;
  SlotMeta &Meta = SlotMetas[{Channel, Slot}];
  if (!Meta.HasPublish)
    return formatString("read-before-write: agent %d reads channel %lld slot "
                        "%lld before any publication",
                        Agent, static_cast<long long>(Channel),
                        static_cast<long long>(Slot));
  // The reader must have acquired the publishing clock (through get).
  if (!leq(Meta.PublishClock, Clocks[Agent]))
    return formatString("unordered read: agent %d reads channel %lld slot "
                        "%lld without acquiring the producer's publication",
                        Agent, static_cast<long long>(Channel),
                        static_cast<long long>(Slot));
  Meta.HasRead = true;
  Meta.ReadReleased = false;
  // Join (not assign): cooperative consumer groups read the same slot, and
  // the producer must be ordered after *all* of their releases.
  if (Meta.LastReadClock.empty())
    Meta.LastReadClock = Clocks[Agent];
  else
    join(Meta.LastReadClock, Clocks[Agent]);
  return "";
}

void HappensBeforeTracker::recordPut(int Agent, int64_t Channel,
                                     int64_t Slot) {
  tick(Agent);
  ++NextSeq;
  SlotMeta &Meta = SlotMetas[{Channel, Slot}];
  Meta.PublishClock = Clocks[Agent];
  Meta.HasPublish = true;
}

void HappensBeforeTracker::recordGet(int Agent, int64_t Channel,
                                     int64_t Slot) {
  tick(Agent);
  ++NextSeq;
  SlotMeta &Meta = SlotMetas[{Channel, Slot}];
  if (Meta.HasPublish)
    join(Clocks[Agent], Meta.PublishClock);
}

void HappensBeforeTracker::recordConsumed(int Agent, int64_t Channel,
                                          int64_t Slot) {
  tick(Agent);
  ++NextSeq;
  SlotMeta &Meta = SlotMetas[{Channel, Slot}];
  if (Meta.FreeClock.empty())
    Meta.FreeClock = Clocks[Agent];
  else
    join(Meta.FreeClock, Clocks[Agent]);
  Meta.ReadReleased = true;
}

void HappensBeforeTracker::recordAcquireEmpty(int Agent, int64_t Channel,
                                              int64_t Slot) {
  tick(Agent);
  ++NextSeq;
  SlotMeta &Meta = SlotMetas[{Channel, Slot}];
  join(Clocks[Agent], Meta.FreeClock);
}
