//===- ArefSemantics.cpp - Fig. 4 operational semantics ----------------------//

#include "sem/ArefSemantics.h"

#include "support/Support.h"

using namespace tawa;
using namespace tawa::sem;

const char *tawa::sem::getSlotStateName(SlotState S) {
  switch (S) {
  case SlotState::Empty:
    return "empty";
  case SlotState::Full:
    return "full";
  case SlotState::Borrowed:
    return "borrowed";
  }
  return "<invalid>";
}

//===----------------------------------------------------------------------===//
// ArefSlotState
//===----------------------------------------------------------------------===//

TransitionResult ArefSlotState::put(uint64_t Epoch) {
  switch (State) {
  case SlotState::Empty:
    // PUT rule: sigma(a).E = 1 -> {buf = v, F = 1, E = 0}.
    State = SlotState::Full;
    PublishEpoch = Epoch;
    return TransitionResult::Ok;
  case SlotState::Full:
    // A second put before the slot drains would overwrite a published value;
    // with a real mbarrier this blocks on the empty barrier.
    return TransitionResult::WouldBlock;
  case SlotState::Borrowed:
    // The consumer still holds the value (consumed not yet issued).
    return TransitionResult::WouldBlock;
  }
  return TransitionResult::ProtocolError;
}

TransitionResult ArefSlotState::get(uint64_t *PublishEpochOut) {
  switch (State) {
  case SlotState::Full:
    // GET rule: sigma(a).F = 1 -> {F = 0, E = 0}, yields buf.
    State = SlotState::Borrowed;
    if (PublishEpochOut)
      *PublishEpochOut = PublishEpoch;
    return TransitionResult::Ok;
  case SlotState::Empty:
    // Premature access: nothing has been published; block on the full
    // barrier.
    return TransitionResult::WouldBlock;
  case SlotState::Borrowed:
    // A second get before consumed: double acquisition of the same credit.
    return TransitionResult::ProtocolError;
  }
  return TransitionResult::ProtocolError;
}

TransitionResult ArefSlotState::consumed() {
  switch (State) {
  case SlotState::Borrowed:
    // CONSUMED rule: -> {F = 0, E = 1}; closes the handshake and completes
    // the put -> get -> consumed happens-before chain.
    State = SlotState::Empty;
    ++Generation;
    return TransitionResult::Ok;
  case SlotState::Empty:
  case SlotState::Full:
    // Releasing a credit that was never acquired is unconditionally wrong;
    // it would grant the producer an extra empty credit and allow it to
    // overwrite data the consumer has not read.
    return TransitionResult::ProtocolError;
  }
  return TransitionResult::ProtocolError;
}

//===----------------------------------------------------------------------===//
// ArefMachine
//===----------------------------------------------------------------------===//

ArefMachine::ArefMachine(int64_t Depth, std::string Name)
    : Depth(Depth), Name(std::move(Name)), Slots(Depth) {
  assert(Depth >= 1 && "aref ring must have at least one slot");
}

ArefSlotState &ArefMachine::slot(int64_t Slot) {
  assert(Slot >= 0 && Slot < Depth && "aref slot out of range");
  return Slots[Slot];
}

TransitionResult ArefMachine::put(int64_t Slot, uint64_t Epoch) {
  TransitionResult R = slot(Slot).put(Epoch);
  if (R == TransitionResult::ProtocolError)
    recordViolation(Slot, "illegal put from state " +
                              std::string(getSlotStateName(
                                  Slots[Slot].getState())));
  return R;
}

TransitionResult ArefMachine::get(int64_t Slot, uint64_t *PublishEpochOut) {
  TransitionResult R = slot(Slot).get(PublishEpochOut);
  if (R == TransitionResult::ProtocolError)
    recordViolation(Slot, "illegal get from state " +
                              std::string(getSlotStateName(
                                  Slots[Slot].getState())));
  return R;
}

TransitionResult ArefMachine::consumed(int64_t Slot) {
  TransitionResult R = slot(Slot).consumed();
  if (R == TransitionResult::ProtocolError)
    recordViolation(Slot, "illegal consumed from state " +
                              std::string(getSlotStateName(
                                  Slots[Slot].getState())));
  return R;
}

SlotState ArefMachine::getSlotState(int64_t Slot) const {
  assert(Slot >= 0 && Slot < Depth && "aref slot out of range");
  return Slots[Slot].getState();
}

uint64_t ArefMachine::getGeneration(int64_t Slot) const {
  assert(Slot >= 0 && Slot < Depth && "aref slot out of range");
  return Slots[Slot].getGeneration();
}

void ArefMachine::recordViolation(int64_t Slot, const std::string &What) {
  Violations.push_back(
      {formatString("%s[%lld]: %s", Name.c_str(),
                    static_cast<long long>(Slot), What.c_str()),
       Slot});
}
