//===- tawa_sandbox.cpp - Out-of-process sandbox runner -------------------===//
//
// The child half of the execution sandbox (docs/serving.md). Spawned by
// serve::Supervisor with an AF_UNIX socketpair as stdin/stdout, it speaks
// a three-line-type protocol:
//
//   child -> parent   ready\n                 once, at startup
//   parent -> child   req <ms> <spec|-> <tawa-serve-req-v1 json>\n
//   child -> parent   hb\n                    while a request executes
//   child -> parent   <tawa-serve-resp-v1 json>\n   exactly one per req
//
// <spec> forwards the parent's armed fault-injection spec ("-" = none),
// so deterministic fault drills cross the process boundary: sandbox.kill
// raises SIGKILL mid-request, sandbox.hang freezes without heartbeats
// (the supervisor's heartbeat deadline trips), and worker.* sites crash
// the simulation engine in here instead of in the daemon.
//
// Execution itself is serve::executeRequest — the same attempt core the
// in-process service uses — at ladder level 0: the sandbox exists for
// isolation, not for degraded modes.
//
//===----------------------------------------------------------------------===//

#include "serve/Execute.h"
#include "serve/Protocol.h"
#include "support/Env.h"
#include "support/FaultInject.h"
#include "support/Status.h"

#include <chrono>
#include <condition_variable>
#include <csignal>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <string>
#include <thread>

#include <unistd.h>

using namespace tawa;
using namespace tawa::serve;

namespace {

/// Serializes heartbeat lines against response lines so frames never
/// interleave on the shared channel.
std::mutex WrMu;

bool writeAll(const std::string &Data) {
  std::lock_guard<std::mutex> L(WrMu);
  size_t Off = 0;
  while (Off < Data.size()) {
    ssize_t N = ::write(STDOUT_FILENO, Data.data() + Off, Data.size() - Off);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return false;
    }
    Off += static_cast<size_t>(N);
  }
  return true;
}

/// Heartbeat pump: emits `hb` every HeartbeatMs, but only while a request
/// is in flight — an idle child is silent (the supervisor only arms its
/// heartbeat deadline per-request).
struct Heartbeat {
  std::mutex Mu;
  std::condition_variable CV;
  bool InFlight = false;
  bool Exit = false;
  int64_t PeriodMs;
  std::thread T;

  Heartbeat()
      : PeriodMs(std::max<int64_t>(
            1, envInt64("TAWA_SANDBOX_HEARTBEAT_MS", 100))),
        T([this] { loop(); }) {}

  ~Heartbeat() {
    {
      std::lock_guard<std::mutex> L(Mu);
      Exit = true;
    }
    CV.notify_all();
    T.join();
  }

  void loop() {
    std::unique_lock<std::mutex> L(Mu);
    for (;;) {
      CV.wait(L, [&] { return InFlight || Exit; });
      if (Exit)
        return;
      while (InFlight && !Exit) {
        CV.wait_for(L, std::chrono::milliseconds(PeriodMs));
        if (InFlight && !Exit) {
          L.unlock();
          writeAll("hb\n");
          L.lock();
        }
      }
    }
  }

  void begin() {
    {
      std::lock_guard<std::mutex> L(Mu);
      InFlight = true;
    }
    CV.notify_all();
  }

  void end() {
    {
      std::lock_guard<std::mutex> L(Mu);
      InFlight = false;
    }
    CV.notify_all();
  }
};

/// Runs one decoded frame and renders the response line. Never lets an
/// engine exception escape as an unframed abort — the supervisor would
/// classify the death, but a structured line preserves the taxonomy.
std::string handleFrame(int64_t RemainingMs, const std::string &Json) {
  ServeRequest Req;
  ServeResponse Resp;
  std::string ParseErr = parseRequest(Json, Req);
  Resp.Id = Req.Id;
  Resp.Attempts = 1;
  if (!ParseErr.empty()) {
    Resp.St = ServeResponse::Status::Rejected;
    Resp.Reason = "bad-request";
    Resp.Error = ParseErr;
    return Resp.render();
  }

  ExecEnv Env;
  Env.Level = 0;
  Env.RemainingMs = RemainingMs;
  Env.DefaultMaxSteps = envInt64("TAWA_SERVE_MAX_STEPS", Env.DefaultMaxSteps);
  Env.ExecWorkers = envInt64("TAWA_SERVE_EXEC_WORKERS", Env.ExecWorkers);

  ErrorKind Kind = ErrorKind::None;
  std::string Err;
  try {
    Err = executeRequest(Req, Env, Resp, Kind);
  } catch (const std::exception &E) {
    Err = std::string("worker crash: ") + E.what();
    Kind = ErrorKind::WorkerCrash;
  }
  if (Err.empty()) {
    Resp.St = ServeResponse::Status::Ok;
  } else {
    Resp.St = ServeResponse::Status::Failed;
    Resp.Error = Err;
    if (Kind == ErrorKind::None)
      Kind = classifyError(Err);
    Resp.ErrorKind = errorKindName(Kind);
  }
  return Resp.render();
}

} // namespace

int main() {
  // The channel is the only lifeline; a dead parent surfaces as EOF on
  // read, never SIGPIPE on write.
  ::signal(SIGPIPE, SIG_IGN);

  if (!writeAll("ready\n"))
    return 1;

  Heartbeat Hb;
  std::string Buf;
  char Tmp[4096];
  for (;;) {
    size_t NL;
    while ((NL = Buf.find('\n')) == std::string::npos) {
      ssize_t N = ::read(STDIN_FILENO, Tmp, sizeof(Tmp));
      if (N < 0 && errno == EINTR)
        continue;
      if (N <= 0)
        return 0; // Parent gone; clean exit.
      Buf.append(Tmp, static_cast<size_t>(N));
    }
    std::string Line = Buf.substr(0, NL);
    Buf.erase(0, NL + 1);
    if (Line.empty())
      continue;

    // Frame: req <remaining-ms> <fault-spec|-> <json>.
    if (Line.compare(0, 4, "req ") != 0)
      return 2; // Corrupted stream; die loudly, the supervisor replaces us.
    size_t MsEnd = Line.find(' ', 4);
    if (MsEnd == std::string::npos)
      return 2;
    size_t SpecEnd = Line.find(' ', MsEnd + 1);
    if (SpecEnd == std::string::npos)
      return 2;
    int64_t RemainingMs =
        std::strtoll(Line.c_str() + 4, nullptr, 10);
    std::string Spec = Line.substr(MsEnd + 1, SpecEnd - MsEnd - 1);
    std::string Json = Line.substr(SpecEnd + 1);

    // Mirror the parent's fault-injection state for this request. A bad
    // spec cannot happen through the supervisor (the parent validated it
    // when arming); treat it as stream corruption.
    if (Spec == "-") {
      faults::reset();
    } else if (!faults::configure(Spec, nullptr)) {
      return 2;
    }

    // sandbox.hang: freeze BEFORE the heartbeat pump starts, so the
    // supervisor's heartbeat deadline trips deterministically.
    if (faults::enabled() &&
        faults::shouldFailNext(faults::Site::SandboxHang)) {
      for (;;)
        std::this_thread::sleep_for(std::chrono::hours(1));
    }

    Hb.begin();
    // sandbox.kill: die mid-request, heartbeats already flowing — the
    // supervisor sees EOF and classifies "signal 9 (SIGKILL)".
    if (faults::enabled() &&
        faults::shouldFailNext(faults::Site::SandboxKill))
      ::raise(SIGKILL);
    std::string RespLine = handleFrame(RemainingMs, Json);
    Hb.end();

    if (!writeAll(RespLine + "\n"))
      return 0;
  }
}
