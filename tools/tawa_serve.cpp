//===- tawa_serve.cpp - Simulation service daemon ------------------------------//
//
// Serves kernel-configuration requests over a unix socket (docs/serving.md):
//
//   tawa-serve --socket /tmp/tawa.sock
//
// Clients send one tawa-serve-req-v1 JSON document per line and read one
// tawa-serve-resp-v1 line back. SIGTERM / SIGINT shut down gracefully:
// in-flight and already-queued requests finish and their responses are
// delivered, new requests are shed with `rejected: shutting-down`, then the
// process exits 0 after printing a stats summary.
//
//===----------------------------------------------------------------------===//

#include "serve/Server.h"

#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <string>

#include <unistd.h>

using namespace tawa;

namespace {

// Self-pipe: the handler only writes a byte; all shutdown work happens on
// the main thread after the blocking read returns.
int SigPipe[2] = {-1, -1};

void onSignal(int) {
  char C = 'x';
  (void)!::write(SigPipe[1], &C, 1);
}

int usage(const char *Argv0) {
  std::fprintf(stderr,
               "usage: %s --socket PATH [--crash-dir PATH]\n"
               "  --crash-dir PATH  flight-recorder crash dumps go here\n"
               "                    (overrides TAWA_SERVE_CRASH_DIR)\n"
               "Environment: TAWA_SERVE_* / TAWA_SANDBOX_* knobs\n"
               "(docs/serving.md), plus the usual TAWA_CACHE_DIR /\n"
               "TAWA_MAX_STEPS / TAWA_FAULTS.\n",
               Argv0);
  return 1;
}

} // namespace

int main(int argc, char **argv) {
  std::string Path;
  std::string CrashDir;
  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    if (Arg == "--socket" && I + 1 < argc) {
      Path = argv[++I];
    } else if (Arg == "--crash-dir" && I + 1 < argc) {
      CrashDir = argv[++I];
    } else {
      return usage(argv[0]);
    }
  }
  if (Path.empty())
    return usage(argv[0]);

  if (::pipe(SigPipe) < 0) {
    std::fprintf(stderr, "tawa-serve: pipe: %s\n", std::strerror(errno));
    return 1;
  }
  std::signal(SIGTERM, onSignal);
  std::signal(SIGINT, onSignal);
  std::signal(SIGPIPE, SIG_IGN);

  serve::ServeConfig Cfg = serve::ServeConfig::fromEnv();
  if (!CrashDir.empty())
    Cfg.CrashDumpDir = CrashDir;
  serve::Service Svc(Cfg);
  // Best-effort black box for the daemon itself: a fatal signal dumps the
  // last admitted request before the default action re-delivers.
  serve::FlightRecorder::installFatalSignalDump(Svc.recorder());
  serve::SocketServer Srv(Svc, Path);
  std::string Err;
  if (!Srv.start(Err)) {
    std::fprintf(stderr, "tawa-serve: %s\n", Err.c_str());
    return 1;
  }
  // The readiness line scripts wait for before firing load.
  std::printf("tawa-serve: listening on %s\n", Path.c_str());
  std::fflush(stdout);

  char C;
  while (::read(SigPipe[0], &C, 1) < 0 && errno == EINTR) {
  }

  std::fprintf(stderr, "tawa-serve: draining\n");
  Srv.shutdown();
  Svc.shutdown();

  serve::ServeStats S = Svc.stats();
  std::printf("tawa-serve: accepted=%lld succeeded=%lld failed=%lld "
              "bad_requests=%lld rejected_overload=%lld "
              "rejected_shutdown=%lld retries=%lld degrade_steps=%lld "
              "breaker_trips=%lld sandbox_requests=%lld "
              "sandbox_crashes=%lld sandbox_timeouts=%lld "
              "sandbox_spawns=%lld crash_dumps=%lld\n",
              static_cast<long long>(S.Accepted),
              static_cast<long long>(S.Succeeded),
              static_cast<long long>(S.Failed),
              static_cast<long long>(S.BadRequests),
              static_cast<long long>(S.RejectedOverload),
              static_cast<long long>(S.RejectedShutdown),
              static_cast<long long>(S.Retries),
              static_cast<long long>(S.DegradeSteps),
              static_cast<long long>(S.BreakerTrips),
              static_cast<long long>(S.SandboxRequests),
              static_cast<long long>(S.SandboxCrashes),
              static_cast<long long>(S.SandboxTimeouts),
              static_cast<long long>(S.SandboxSpawns),
              static_cast<long long>(S.CrashDumps));
  return 0;
}
